#ifndef CQAC_CATALOG_VIEW_CATALOG_H_
#define CQAC_CATALOG_VIEW_CATALOG_H_

// Ahead-of-time view compilation and cross-request caching.
//
// Production traffic is many queries against a mostly-fixed view set, yet
// the classic EquivalentRewriter re-derives every piece of per-view
// machinery — interned symbols, exported V0 variants, per-view AC
// closures, the views' constant pool — on every call, and containment
// with ACs is Pi^p_2-hard, so each re-derivation feeds a doubly
// exponential algorithm.  A ViewCatalog compiles a ViewSet exactly once
// and is then shared read-only across threads and requests:
//
//  * compiled view data: a SymbolInterner holding every predicate and
//    variable of the views, the exported V0 variants flattened in view
//    order, the deduplicated ascending view-constant pool, and each
//    view's AC closure (satisfiability + forced equalities);
//  * a catalog-scoped containment MemoCache, persistent across requests;
//  * a plan cache: per (query, semantic options) a prepared RewriteWork —
//    PreparedQuery, MiniCon buckets, MCD relations — plus a persistent
//    catalog-scoped Phase-1 fingerprint memo.  A plan's stable work_id
//    also keeps the per-thread freezer/evaluator/matcher caches inside
//    ProcessCanonicalDatabase warm between requests, which is how the
//    prepared view-tuple evaluators are reused;
//  * an alpha-normalized semantic result cache in front of it all: the
//    NormalizedQueryKey of the query plus the result-relevant options
//    maps to the finished rewriting, so a repeated query — even one that
//    merely alpha-renames a cached one — short-circuits the entire
//    algorithm at parse+render cost.  Replayed results carry the original
//    run's configuration-invariant counters, so rendered output is
//    byte-identical to a fresh run.
//
// Invalidation is by epoch bump: catalogs are immutable, every
// construction draws a fresh strictly increasing epoch from a global
// counter, and "changing the views" means building (or looking up) a new
// catalog — typically through a CatalogRegistry — whose caches start
// empty.  In-flight requests keep their shared_ptr to the old epoch.
//
// Thread safety: the compiled view data is immutable; the caches are
// internally synchronized.  Rewrite() may be called concurrently from any
// number of threads.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ast/interner.h"
#include "ast/query.h"
#include "ast/substitution.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/view_set.h"
#include "runtime/memo_cache.h"

namespace cqac {

class ThreadPool;

struct CatalogOptions {
  /// Capacity of the catalog-scoped Phase-2 containment MemoCache.
  size_t containment_cache_capacity = 1 << 16;

  /// Compiled query plans kept (LRU).  A plan is a prepared RewriteWork
  /// plus its persistent Phase-1 memo; evicting one only costs a rebuild.
  size_t plan_capacity = 64;

  /// Semantic result entries kept (LRU).
  size_t semantic_capacity = 1 << 12;

  /// The alpha-normalized result cache.  Off, every request still reuses
  /// the compiled views, plans, and both memos; results are byte-identical
  /// either way (the corpus replay test asserts it), so this exists for
  /// ablation and the config lattice, not as a safety valve.
  bool semantic_cache = true;
};

/// One view's AC closure, computed once at catalog build.
struct ViewClosure {
  /// False when the view's comparisons are contradictory: the view
  /// computes nothing on any database.
  bool satisfiable = true;

  /// Equalities the comparisons force (variable -> representative or
  /// constant); empty when none or unsatisfiable.
  Substitution forced_equalities;
};

/// Point-in-time counters of one catalog.
struct CatalogStats {
  uint64_t epoch = 0;
  int views = 0;
  int64_t v0_variants = 0;
  int64_t plans_built = 0;
  int64_t plan_hits = 0;
  int64_t semantic_hits = 0;
  int64_t semantic_misses = 0;
  MemoCacheStats containment;
};

class ViewCatalog {
 public:
  explicit ViewCatalog(ViewSet views, CatalogOptions options = {});

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  const ViewSet& views() const { return views_; }
  const CatalogOptions& options() const { return options_; }

  /// Strictly increasing across every catalog built in this process; the
  /// invalidation token surfaced in stats, server responses, and logs.
  uint64_t epoch() const { return epoch_; }

  /// Every predicate and variable name of the views, interned at build.
  const SymbolInterner& interner() const { return interner_; }

  /// The exported V0 variants of all views, flattened in view order —
  /// exactly what PrepareRewriteWork would derive per call.
  const std::vector<ConjunctiveQuery>& v0_variants() const {
    return v0_variants_;
  }

  /// views().Constants(), computed once (ascending, deduplicated).
  const std::vector<Rational>& view_constants() const {
    return view_constants_;
  }

  /// AC closure of views().views()[i].
  const ViewClosure& closure(int i) const {
    return closures_[static_cast<size_t>(i)];
  }

  /// The catalog-scoped Phase-2 containment memo, shared by every request
  /// served through this catalog.
  MemoCache& containment_memo() { return containment_memo_; }

  /// Serves one request through the catalog.  Semantically identical to
  /// `EquivalentRewriter(query, views(), options, &containment_memo()).Run()`
  /// — outcome, rewriting, failure reason, and the configuration-invariant
  /// stats are byte-identical — but compiled view data, plans, the
  /// Phase-1 memo, and the semantic cache are reused across calls.
  ///
  /// Driver-level options are honored per request: `jobs` selects serial
  /// or parallel execution (`pool`, when non-null, supplies the threads),
  /// `cancel` and `max_canonical_databases` bound the run, and
  /// `phase1_dedup` gates use of the persistent Phase-1 memo.  Explain
  /// runs bypass every cache so traces stay complete; aborted or
  /// cancelled runs are never cached.
  RewriteResult Rewrite(const ConjunctiveQuery& query,
                        const RewriteOptions& options,
                        ThreadPool* pool = nullptr);

  CatalogStats Stats() const;

 private:
  struct CatalogPlan;
  struct SemanticEntry;

  std::shared_ptr<const CatalogPlan> GetOrBuildPlan(
      const ConjunctiveQuery& query, const RewriteOptions& options,
      const std::string& plan_sig);
  std::optional<RewriteResult> ProbeSemantic(const std::string& key,
                                             const ConjunctiveQuery& query);
  void StoreSemantic(const std::string& key, const ConjunctiveQuery& query,
                     const RewriteResult& result);

  const CatalogOptions options_;
  const ViewSet views_;
  const uint64_t epoch_;

  SymbolInterner interner_;
  std::vector<ConjunctiveQuery> v0_variants_;
  std::vector<Rational> view_constants_;
  std::vector<ViewClosure> closures_;

  MemoCache containment_memo_;

  mutable std::mutex plan_mu_;
  std::list<std::pair<std::string, std::shared_ptr<const CatalogPlan>>>
      plans_;  // front = most recent

  mutable std::mutex semantic_mu_;
  std::list<std::pair<std::string, std::shared_ptr<const SemanticEntry>>>
      semantic_;  // front = most recent

  std::atomic<int64_t> plans_built_{0};
  std::atomic<int64_t> plan_hits_{0};
  std::atomic<int64_t> semantic_hits_{0};
  std::atomic<int64_t> semantic_misses_{0};
};

/// Canonical fingerprint of a view set: the concatenated rendered views.
/// Two sets with equal fingerprints define the same catalog.
std::string FingerprintViewSet(const ViewSet& views);

/// Aggregate counters over a registry's resident catalogs plus its own.
struct CatalogRegistryStats {
  int64_t catalogs_built = 0;  // lifetime, including evicted ones
  int catalogs_resident = 0;
  uint64_t latest_epoch = 0;  // max epoch among resident catalogs
  int64_t plans_built = 0;
  int64_t plan_hits = 0;
  int64_t semantic_hits = 0;
  int64_t semantic_misses = 0;
  MemoCacheStats containment;
};

/// A small LRU of catalogs keyed by view-set fingerprint, so long-lived
/// drivers (the batch driver, the server) serve every distinct view set
/// they see through one shared catalog.  Thread-safe; builds happen
/// outside the lock and a concurrent duplicate build resolves to the
/// first inserted catalog.
class CatalogRegistry {
 public:
  explicit CatalogRegistry(size_t capacity = 8, CatalogOptions options = {});

  CatalogRegistry(const CatalogRegistry&) = delete;
  CatalogRegistry& operator=(const CatalogRegistry&) = delete;

  /// The resident catalog for `views`, building (and possibly evicting)
  /// if absent.  The returned pointer stays valid after eviction.
  std::shared_ptr<ViewCatalog> GetOrBuild(const ViewSet& views);

  /// The resident catalog for `views`, or nullptr.
  std::shared_ptr<ViewCatalog> Find(const ViewSet& views) const;

  size_t size() const;
  int64_t catalogs_built() const {
    return built_.load(std::memory_order_relaxed);
  }

  CatalogRegistryStats Stats() const;

 private:
  const size_t capacity_;
  const CatalogOptions options_;
  mutable std::mutex mu_;
  std::list<std::pair<std::string, std::shared_ptr<ViewCatalog>>>
      lru_;  // front = most recent
  std::atomic<int64_t> built_{0};
};

}  // namespace cqac

#endif  // CQAC_CATALOG_VIEW_CATALOG_H_
