#include "catalog/view_catalog.h"

#include <algorithm>
#include <set>

#include "constraints/ac_solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewriting/exportable.h"
#include "runtime/parallel_rewriter.h"

namespace cqac {

namespace {

/// The options fields a plan is compiled for: everything
/// FinalizeFoundRewriting / ProcessCanonicalDatabase /
/// CheckExpansionContained read through work.options.  Driver-level knobs
/// (jobs, cancel, max_canonical_databases, phase1_dedup) are per-request
/// and excluded.
std::string PlanSignature(const RewriteOptions& o) {
  std::string sig;
  sig += std::to_string(static_cast<int>(o.pruning));
  sig += o.simplify_expansions ? 'S' : 's';
  sig += o.verify ? 'V' : 'v';
  sig += o.coalesce_output ? 'C' : 'c';
  sig += o.minimize_output ? 'M' : 'm';
  // The execution tier is resolved at PrepareRewriteWork time and baked
  // into the plan (grid cache, acyclic plan), so plans compiled under
  // different forced tiers must never alias.
  sig += 'T';
  sig += std::to_string(o.force_tier);
  return sig;
}

/// The semantic-result key additionally pins the database budget, because
/// it changes the outcome (kAborted vs a full answer).  jobs and
/// phase1_dedup stay excluded: the result and every cached counter are
/// invariant under them.
std::string SemanticSignature(const RewriteOptions& o) {
  std::string sig = PlanSignature(o);
  sig += '#';
  sig += std::to_string(o.max_canonical_databases);
  return sig;
}

/// Distinct variables of `q` in exactly the first-occurrence order
/// NormalizedQueryKey's normalizer assigns ids: head args, then body atom
/// args, then comparison lhs/rhs.  Two queries with equal normalized keys
/// therefore have positionally corresponding variable lists, which is
/// what makes the rename-on-hit below a bijection.
std::vector<std::string> VarsInNormalOrder(const ConjunctiveQuery& q) {
  std::vector<std::string> vars;
  std::set<std::string> seen;
  const auto add = [&](const Term& t) {
    if (t.IsVariable() && seen.insert(t.name()).second) {
      vars.push_back(t.name());
    }
  };
  for (const Term& t : q.head().args()) add(t);
  for (const Atom& a : q.body()) {
    for (const Term& t : a.args()) add(t);
  }
  for (const Comparison& c : q.comparisons()) {
    add(c.lhs());
    add(c.rhs());
  }
  return vars;
}

void RecordCatalogCounter(const char* name) {
  if (!obs::MetricsActive()) return;
  obs::MetricsRegistry::Global().counter(name).Add(1);
}

/// Epochs are process-global so a swapped-in catalog is always observably
/// newer than the one it replaces, even across registries.
std::atomic<uint64_t> g_next_epoch{0};

}  // namespace

/// A query compiled against the catalog: the prepared work context plus
/// the persistent Phase-1 fingerprint memo whose entries index into it.
/// `work` references the sibling `query`/`options` members and the
/// catalog's ViewSet, so plans never outlive their catalog (the registry
/// hands out shared_ptr<ViewCatalog> to enforce that).
struct ViewCatalog::CatalogPlan {
  ConjunctiveQuery query;
  RewriteOptions options;  // plan-pinned semantics; driver knobs neutral
  RewriteWork work;
  mutable Phase1Memo phase1_memo;  // internally synchronized

  static RewriteOptions Pin(RewriteOptions o) {
    o.jobs = 1;
    o.cancel = nullptr;
    o.max_canonical_databases = -1;
    o.explain = false;  // explain bypasses the catalog entirely
    // force_tier stays: the tier is part of the plan signature and the
    // compiled work must reflect it.
    return o;
  }

  CatalogPlan(const ViewCatalog& catalog, ConjunctiveQuery q,
              const RewriteOptions& o)
      : query(std::move(q)),
        options(Pin(o)),
        work(PrepareRewriteWork(query, catalog.views(), options,
                                &catalog.v0_variants(),
                                &catalog.view_constants())) {}
};

/// One finished answer in the semantic cache.  Counters replayed on a hit
/// are the original run's: the configuration-invariant ones
/// (canonical_databases, kept, v0_variants, mcds_formed, mcds_kept_total,
/// view_tuples_total, phase2_checks) are exactly what a fresh run would
/// report; wall times and memo splits are historical.
struct ViewCatalog::SemanticEntry {
  std::string query_text;          // exact rendering of the cached query
  std::vector<std::string> vars;   // VarsInNormalOrder of that query
  std::vector<std::string> extra_vars;  // rewriting vars not in `vars`
  RewriteOutcome outcome = RewriteOutcome::kNoRewriting;
  std::vector<ConjunctiveQuery> disjuncts;
  bool verified = false;
  std::string failure_reason;
  RewriteStats stats;
  int tier = 0;  // the original run's routing, replayed on a hit
  std::string tier_reason;
};

ViewCatalog::ViewCatalog(ViewSet views, CatalogOptions options)
    : options_(options),
      views_(std::move(views)),
      epoch_(g_next_epoch.fetch_add(1, std::memory_order_relaxed) + 1),
      containment_memo_(options.containment_cache_capacity) {
  CQAC_TRACE_SPAN("catalog.build");
  closures_.reserve(views_.views().size());
  for (const ConjunctiveQuery& view : views_.views()) {
    // Intern every symbol of the view once, ahead of any request.
    interner_.Intern(view.head().predicate());
    for (const Term& t : view.head().args()) {
      if (t.IsVariable()) interner_.Intern(t.name());
    }
    for (const Atom& a : view.body()) {
      interner_.Intern(a.predicate());
      for (const Term& t : a.args()) {
        if (t.IsVariable()) interner_.Intern(t.name());
      }
    }
    for (const Comparison& c : view.comparisons()) {
      if (c.lhs().IsVariable()) interner_.Intern(c.lhs().name());
      if (c.rhs().IsVariable()) interner_.Intern(c.rhs().name());
    }

    // The view's AC closure.
    ViewClosure closure;
    closure.satisfiable = AcSolver::IsSatisfiable(view.comparisons());
    if (closure.satisfiable) {
      if (std::optional<Substitution> forced =
              AcSolver::ForcedEqualities(view.comparisons())) {
        closure.forced_equalities = *std::move(forced);
      }
    }
    closures_.push_back(std::move(closure));

    // The exported variants, flattened in view order — the exact
    // per-view derivation PrepareRewriteWork performs, hoisted to build
    // time.
    for (ConjunctiveQuery& variant : BuildV0Variants(view)) {
      v0_variants_.push_back(std::move(variant));
    }
  }
  view_constants_ = views_.Constants();
  RecordCatalogCounter("catalog.builds");
}

std::shared_ptr<const ViewCatalog::CatalogPlan> ViewCatalog::GetOrBuildPlan(
    const ConjunctiveQuery& query, const RewriteOptions& options,
    const std::string& plan_sig) {
  std::string key = plan_sig;
  key += '\x1f';
  key += query.ToString();

  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    for (auto it = plans_.begin(); it != plans_.end(); ++it) {
      if (it->first == key) {
        plans_.splice(plans_.begin(), plans_, it);
        plan_hits_.fetch_add(1, std::memory_order_relaxed);
        RecordCatalogCounter("catalog.plan_hits");
        return plans_.front().second;
      }
    }
  }

  // Build outside the lock (MiniCon bucket formation is the expensive
  // part); on a concurrent duplicate build the first insert wins so both
  // requests share one Phase-1 memo.
  auto plan = std::make_shared<const CatalogPlan>(*this, query, options);
  plans_built_.fetch_add(1, std::memory_order_relaxed);
  RecordCatalogCounter("catalog.plans_built");
  std::lock_guard<std::mutex> lock(plan_mu_);
  for (auto it = plans_.begin(); it != plans_.end(); ++it) {
    if (it->first == key) {
      plans_.splice(plans_.begin(), plans_, it);
      return plans_.front().second;
    }
  }
  plans_.emplace_front(std::move(key), plan);
  while (plans_.size() > options_.plan_capacity) plans_.pop_back();
  return plan;
}

std::optional<RewriteResult> ViewCatalog::ProbeSemantic(
    const std::string& key, const ConjunctiveQuery& query) {
  std::shared_ptr<const SemanticEntry> entry;
  {
    std::lock_guard<std::mutex> lock(semantic_mu_);
    for (auto it = semantic_.begin(); it != semantic_.end(); ++it) {
      if (it->first == key) {
        semantic_.splice(semantic_.begin(), semantic_, it);
        entry = it->second;
        break;
      }
    }
  }
  if (entry == nullptr) return std::nullopt;

  RewriteResult result;
  result.outcome = entry->outcome;
  result.verified = entry->verified;
  result.stats = entry->stats;
  result.tier = entry->tier;
  result.tier_reason = entry->tier_reason;

  if (entry->query_text == query.ToString()) {
    // The very same query: replay verbatim.
    result.rewriting = UnionQuery(entry->disjuncts);
    result.failure_reason = entry->failure_reason;
    return result;
  }

  // Alpha-equal only (same normalized key, different rendering).  Failure
  // reasons embed the cached query's variable and order spellings, so
  // only found rewritings are served across a renaming.
  if (entry->outcome != RewriteOutcome::kRewritingFound) return std::nullopt;

  std::vector<std::string> incoming = VarsInNormalOrder(query);
  if (incoming.size() != entry->vars.size()) return std::nullopt;

  // The rewriting may use variables beyond the query's (MiniCon-fresh
  // "_f" names).  If any collides with an incoming name, renaming could
  // capture it — treat as a miss rather than reason about it.
  for (const std::string& extra : entry->extra_vars) {
    if (std::find(incoming.begin(), incoming.end(), extra) !=
        incoming.end()) {
      return std::nullopt;
    }
  }

  Substitution rename;
  for (size_t i = 0; i < incoming.size(); ++i) {
    if (entry->vars[i] != incoming[i]) {
      rename.Bind(entry->vars[i], Term::Variable(incoming[i]));
    }
  }
  UnionQuery renamed;
  for (const ConjunctiveQuery& d : entry->disjuncts) {
    ConjunctiveQuery r = d.ApplySubstitution(rename);
    // NormalizedQueryKey ignores the head predicate, so the cached head
    // may spell a different query name.
    r.mutable_head() =
        Atom(query.head().predicate(), r.head().args());
    renamed.Add(std::move(r));
  }
  result.rewriting = std::move(renamed);
  return result;
}

void ViewCatalog::StoreSemantic(const std::string& key,
                                const ConjunctiveQuery& query,
                                const RewriteResult& result) {
  auto entry = std::make_shared<SemanticEntry>();
  entry->query_text = query.ToString();
  entry->vars = VarsInNormalOrder(query);
  entry->outcome = result.outcome;
  entry->disjuncts = result.rewriting.disjuncts();
  entry->verified = result.verified;
  entry->failure_reason = result.failure_reason;
  entry->stats = result.stats;
  entry->tier = result.tier;
  entry->tier_reason = result.tier_reason;
  {
    std::set<std::string> own(entry->vars.begin(), entry->vars.end());
    std::set<std::string> extra;
    for (const ConjunctiveQuery& d : entry->disjuncts) {
      for (const std::string& v : d.AllVariables()) {
        if (own.find(v) == own.end()) extra.insert(v);
      }
    }
    entry->extra_vars.assign(extra.begin(), extra.end());
  }

  std::lock_guard<std::mutex> lock(semantic_mu_);
  for (auto it = semantic_.begin(); it != semantic_.end(); ++it) {
    if (it->first == key) {
      // First store wins; a racing duplicate produced the same answer.
      semantic_.splice(semantic_.begin(), semantic_, it);
      return;
    }
  }
  semantic_.emplace_front(key, std::move(entry));
  while (semantic_.size() > options_.semantic_capacity) semantic_.pop_back();
}

RewriteResult ViewCatalog::Rewrite(const ConjunctiveQuery& query,
                                   const RewriteOptions& options,
                                   ThreadPool* pool) {
  CQAC_TRACE_SPAN("catalog.rewrite");

  // Explain runs bypass every cache: traces must be complete and are
  // never replayed.  The classic driver still shares this catalog's
  // containment memo (verdicts are pure, so traces are unaffected).
  if (options.explain) {
    RewriteResult result =
        EquivalentRewriter(query, views_, options, &containment_memo_).Run();
    result.catalog_epoch = epoch_;
    return result;
  }

  // Same shortcut as the drivers: a contradictory query computes nothing
  // and the empty union is an equivalent rewriting.
  if (!AcSolver::IsSatisfiable(query.comparisons())) {
    RewriteResult result;
    result.outcome = RewriteOutcome::kRewritingFound;
    result.tier = 0;
    result.tier_reason =
        "query comparisons unsatisfiable; the rewriting is the empty union";
    if (options.verify) {
      result.verified = RewritingIsEquivalent(query, result.rewriting, views_);
    }
    result.catalog_epoch = epoch_;
    return result;
  }

  std::string semantic_key;
  if (options_.semantic_cache) {
    semantic_key = NormalizedQueryKey(query);
    semantic_key += '\x1f';
    semantic_key += SemanticSignature(options);
    if (std::optional<RewriteResult> hit =
            ProbeSemantic(semantic_key, query)) {
      semantic_hits_.fetch_add(1, std::memory_order_relaxed);
      RecordCatalogCounter("catalog.semantic_hits");
      hit->from_semantic_cache = true;
      hit->catalog_epoch = epoch_;
      return *std::move(hit);
    }
    semantic_misses_.fetch_add(1, std::memory_order_relaxed);
    RecordCatalogCounter("catalog.semantic_misses");
  }

  std::shared_ptr<const CatalogPlan> plan =
      GetOrBuildPlan(query, options, PlanSignature(options));
  Phase1Memo* phase1 =
      options.phase1_dedup ? &plan->phase1_memo : nullptr;

  RewriteResult result;
  if (options.jobs == 1) {
    result = RunPreparedRewriteSerial(plan->work, options,
                                      &containment_memo_, phase1);
    RecordRewriteMetrics(result.stats);
  } else {
    result = ParallelRewritePrepared(plan->work, options, &containment_memo_,
                                     pool, /*report=*/nullptr, phase1);
  }
  result.catalog_epoch = epoch_;

  if (options_.semantic_cache && result.outcome != RewriteOutcome::kAborted) {
    StoreSemantic(semantic_key, query, result);
  }
  return result;
}

CatalogStats ViewCatalog::Stats() const {
  CatalogStats stats;
  stats.epoch = epoch_;
  stats.views = views_.size();
  stats.v0_variants = static_cast<int64_t>(v0_variants_.size());
  stats.plans_built = plans_built_.load(std::memory_order_relaxed);
  stats.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  stats.semantic_hits = semantic_hits_.load(std::memory_order_relaxed);
  stats.semantic_misses = semantic_misses_.load(std::memory_order_relaxed);
  stats.containment = containment_memo_.Stats();
  return stats;
}

std::string FingerprintViewSet(const ViewSet& views) {
  std::string fp;
  for (const ConjunctiveQuery& v : views.views()) {
    fp += v.ToString();
    fp += '\n';
  }
  return fp;
}

CatalogRegistry::CatalogRegistry(size_t capacity, CatalogOptions options)
    : capacity_(std::max<size_t>(capacity, 1)), options_(options) {}

std::shared_ptr<ViewCatalog> CatalogRegistry::GetOrBuild(
    const ViewSet& views) {
  const std::string fp = FingerprintViewSet(views);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->first == fp) {
        lru_.splice(lru_.begin(), lru_, it);
        return lru_.front().second;
      }
    }
  }
  auto catalog = std::make_shared<ViewCatalog>(views, options_);
  built_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->first == fp) {
      // A concurrent build won; use its catalog so caches are shared.
      lru_.splice(lru_.begin(), lru_, it);
      return lru_.front().second;
    }
  }
  lru_.emplace_front(fp, catalog);
  while (lru_.size() > capacity_) lru_.pop_back();
  return catalog;
}

std::shared_ptr<ViewCatalog> CatalogRegistry::Find(
    const ViewSet& views) const {
  const std::string fp = FingerprintViewSet(views);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, catalog] : lru_) {
    if (key == fp) return catalog;
  }
  return nullptr;
}

size_t CatalogRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

CatalogRegistryStats CatalogRegistry::Stats() const {
  CatalogRegistryStats out;
  out.catalogs_built = built_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.catalogs_resident = static_cast<int>(lru_.size());
  for (const auto& [key, catalog] : lru_) {
    const CatalogStats stats = catalog->Stats();
    out.latest_epoch = std::max(out.latest_epoch, stats.epoch);
    out.plans_built += stats.plans_built;
    out.plan_hits += stats.plan_hits;
    out.semantic_hits += stats.semantic_hits;
    out.semantic_misses += stats.semantic_misses;
    out.containment.hits += stats.containment.hits;
    out.containment.misses += stats.containment.misses;
    out.containment.insertions += stats.containment.insertions;
    out.containment.evictions += stats.containment.evictions;
  }
  return out;
}

}  // namespace cqac
