#ifndef CQAC_RUNTIME_TASK_QUEUE_H_
#define CQAC_RUNTIME_TASK_QUEUE_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

namespace cqac {

/// One worker's task deque in the work-stealing scheduler.
///
/// The owner pushes at the back and pops at the front; thieves steal from
/// the back.  Owner and thief thus contend on opposite ends, and the
/// owner consumes its tasks oldest-first — for the rewriting runtime's
/// bulk fan-outs that means ascending canonical-database index, which is
/// exactly the order the prefix-cancellation token wants: a failure at
/// index i cancels the queue tails (high indices), not work the ordered
/// merge still needs.  A single mutex per queue keeps the implementation
/// obviously correct and ThreadSanitizer-clean; the per-task critical
/// section is a deque operation, negligible next to a canonical-database
/// work unit.
class TaskQueue {
 public:
  using Task = std::function<void()>;

  /// Owner end: enqueues a task at the back.
  void Push(Task task);

  /// Owner end: dequeues the oldest task.  Returns false when empty.
  bool TryPop(Task* task);

  /// Thief end: dequeues the most recently pushed task.  Returns false
  /// when empty.
  bool TrySteal(Task* task);

  size_t Size() const;
  bool Empty() const;

 private:
  mutable std::mutex mu_;
  std::deque<Task> tasks_;
};

}  // namespace cqac

#endif  // CQAC_RUNTIME_TASK_QUEUE_H_
