#include "runtime/thread_pool.h"

#include <cstdlib>
#include <utility>

namespace cqac {

namespace {

/// Index of the queue owned by the current thread, when it is a pool
/// worker; -1 on external threads.  Thread-local so recursive Submit from
/// inside a task lands on the submitter's own queue.
thread_local int tls_worker_index = -1;
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

int ThreadPool::ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::ParseJobsFlag(const std::string& text, int* jobs,
                               std::string* error) {
  // Strict: digits only, no sign, no surrounding whitespace (strtol
  // alone would accept " 3", which a flag or `jobs=` value never is).
  bool digits_only = !text.empty();
  for (const char c : text) {
    if (c < '0' || c > '9') {
      digits_only = false;
      break;
    }
  }
  char* end = nullptr;
  const long value =
      digits_only ? std::strtol(text.c_str(), &end, 10) : -1;
  if (!digits_only || end == text.c_str() || *end != '\0' || value < 0) {
    if (error != nullptr) {
      *error = "needs a non-negative integer, got '" + text + "'";
    }
    return false;
  }
  if (value > kMaxJobs) {
    if (error != nullptr) {
      *error = "accepts at most " + std::to_string(kMaxJobs) +
               " worker threads, got '" + text + "'";
    }
    return false;
  }
  *jobs = static_cast<int>(value);
  return true;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = ResolveJobs(num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_.store(true);
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(Task task) {
  int target;
  if (tls_worker_pool == this && tls_worker_index >= 0) {
    target = tls_worker_index;
  } else {
    target = static_cast<int>(next_queue_.fetch_add(1) % queues_.size());
  }
  queues_[target]->Push(std::move(task));
  {
    // The increment must be serialized with the workers' predicate
    // evaluation (which runs under mu_): done outside the lock, it can
    // land between a worker's predicate check and its block in
    // cv_.wait, and the notify below is lost — with every worker asleep
    // the task would never run.  Pushing first means a woken worker
    // always finds the task.
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t depth = pending_.fetch_add(1) + 1;
    if (depth > max_depth_.load(std::memory_order_relaxed)) {
      // mu_ serializes Submits, so a plain store cannot lose a larger
      // concurrent value.
      max_depth_.store(depth, std::memory_order_relaxed);
    }
  }
  cv_.notify_one();
}

bool ThreadPool::NextTask(int worker_index, Task* task) {
  if (queues_[worker_index]->TryPop(task)) return true;
  const int n = static_cast<int>(queues_.size());
  for (int i = 1; i < n; ++i) {
    const int victim = (worker_index + i) % n;
    if (queues_[victim]->TrySteal(task)) {
      stolen_.fetch_add(1);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  tls_worker_pool = this;
  Task task;
  for (;;) {
    if (NextTask(worker_index, &task)) {
      pending_.fetch_sub(1);
      // Count before running: callers learn of completion through the
      // task's own side effects (a latch, a cv), so the increment must
      // happen-before the body for tasks_executed() to read exact once
      // the last task has signalled.
      executed_.fetch_add(1);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return pending_.load() > 0 || stopping_.load();
    });
    // On shutdown keep draining until every queue is empty: tasks
    // submitted before (or during) destruction all run.
    if (stopping_.load() && pending_.load() == 0) return;
  }
}

}  // namespace cqac
