#ifndef CQAC_RUNTIME_BATCH_DRIVER_H_
#define CQAC_RUNTIME_BATCH_DRIVER_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "rewriting/equiv_rewriter.h"
#include "rewriting/view_set.h"
#include "runtime/memo_cache.h"

namespace cqac {

/// Options of the batch service driver.
struct BatchOptions {
  /// Worker threads of the job pool; 0 = hardware concurrency.
  int jobs = 0;

  /// Per-job rewriting options.  `rewrite.jobs` is forced to 1: the batch
  /// driver parallelizes ACROSS jobs — each job runs the serial rewriter
  /// on one worker, which keeps every core busy without oversubscribing.
  RewriteOptions rewrite;

  /// Total entry budget of the shared containment memo cache.
  size_t cache_capacity = 1 << 16;

  /// Echo each job's query/view definitions before its result.
  bool echo = false;

  /// Append a batch-wide Phase-1 footer (databases visited / pruned /
  /// deduped, aggregated over all jobs) after the standard summary lines.
  /// Behind `cqacsh --stats`; off by default so existing consumers of the
  /// batch output format are unaffected.
  bool print_stats = false;

  /// Append a one-line JSON record of the batch summary — job outcomes,
  /// containment-cache counters, and the aggregated rewrite stats
  /// including the Phase-1 memo hit/miss split.  Behind `cqacsh --json`.
  bool json_summary = false;

  /// Append a dump of the global metrics registry (obs/metrics.h) after
  /// the summary.  Behind `cqacsh --metrics`.
  bool print_metrics = false;

  /// Route jobs through a CatalogRegistry (catalog/view_catalog.h): each
  /// distinct view set in the batch is compiled into one shared
  /// ViewCatalog and its plans, Phase-1 memo, containment memo, and
  /// semantic result cache are reused across the batch's jobs.  Results
  /// are byte-identical either way.  Behind `cqacsh --catalog`.
  bool use_catalog = false;
};

/// Counters of one RunBatch call — and the one job-outcome taxonomy
/// shared with the rewrite service (server/server.h): every job lands in
/// exactly one of found / none / aborted / deadline_exceeded / rejected /
/// errors.  The stdin batch driver has no deadlines or admission control,
/// so it leaves the two service counters at zero; the footer and JSON
/// record report them either way so the formats stay aligned.
struct BatchSummary {
  int64_t jobs_total = 0;
  int64_t found = 0;      // jobs with an equivalent rewriting
  int64_t none = 0;       // jobs with provably no rewriting
  int64_t aborted = 0;    // jobs that hit the canonical-database budget
  int64_t deadline_exceeded = 0;  // jobs cancelled by their deadline
  int64_t rejected = 0;   // jobs shed by admission control or drain
  int64_t errors = 0;     // jobs that failed to parse
  MemoCacheStats cache;   // shared memo cache, summed over all jobs
  RewriteStats rewrite;   // per-job RewriteStats, merged over all jobs

  // Catalog counters; meaningful iff catalog_enabled (the footer prints
  // the catalog line only then, the JSON record carries them always).
  bool catalog_enabled = false;
  int64_t catalogs_built = 0;
  int64_t catalog_plans_built = 0;
  int64_t catalog_plan_hits = 0;
  int64_t catalog_semantic_hits = 0;
  int64_t catalog_semantic_misses = 0;
  uint64_t catalog_epoch = 0;  // newest resident catalog's epoch
};

/// One parsed job: a query plus its views.  `error` is set instead when
/// the block failed to parse; the other fields are then meaningless.
struct BatchJob {
  std::optional<ConjunctiveQuery> query;
  ViewSet views;
  std::string error;
};

/// Parses a job stream (the `--serve-batch` stdin format documented on
/// RunBatch below) into blocks.  Parse problems become per-job errors
/// rather than aborting the batch.  Shared with the rewrite service,
/// whose requests carry one block each — going through the same parser is
/// what makes a service response body byte-identical to the batch result
/// block for the same input, error wording included.
std::vector<BatchJob> ParseJobStream(std::istream& in);

/// Parses exactly one job block from `text` (same directives as the
/// stream form; `run`/`---`/blank-line separators are permitted but a
/// second non-empty block is an error).  Never returns an empty result:
/// problems, including "empty job", come back as BatchJob::error.
BatchJob ParseJobBlock(const std::string& text);

/// Renders one job's result block exactly as `--serve-batch` prints it.
std::string RenderJobResult(size_t index, const BatchJob& job,
                            const RewriteResult& result, bool echo);

/// Renders one job's error block ("job N: error: ...\n").
std::string RenderJobError(size_t index, const std::string& error);

/// Writes the batch footer: the outcome line, the cache line, and — per
/// `options` — the Phase-1 stats footer, the one-line JSON record
/// (schema_version kStatsJsonSchemaVersion), and the metrics dump.
/// Shared verbatim by RunBatch and the rewrite service's drain summary.
void WriteBatchFooter(std::ostream& out, const BatchSummary& summary,
                      const BatchOptions& options);

/// The batch service driver behind `cqacsh --serve-batch`: reads a stream
/// of rewriting jobs, executes them concurrently over a work-stealing
/// thread pool with a shared containment memo cache, and writes one
/// result block per job to `out` — in input order, whatever order the
/// jobs finished in.
///
/// Input format (line oriented; `%` or `#` starts a comment):
///
///   view <rule>     add a view to the current job
///   query <rule>    set the current job's query
///   run             dispatch the current job and start a new one
///   ---             same as run
///   <blank line>    same as run
///
/// A trailing job is dispatched at EOF.  Blocks with views but no query
/// are reported as errors; empty blocks (e.g. consecutive separators) are
/// ignored.
BatchSummary RunBatch(std::istream& in, std::ostream& out,
                      const BatchOptions& options = {});

}  // namespace cqac

#endif  // CQAC_RUNTIME_BATCH_DRIVER_H_
