#ifndef CQAC_RUNTIME_CANCELLATION_H_
#define CQAC_RUNTIME_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <limits>

namespace cqac {

/// Cooperative cancellation flag shared by a group of tasks.  Tasks poll
/// `cancelled()` at their entry (and at any convenient internal point);
/// anyone may call `Cancel()`.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Prefix cancellation for deterministic early abort over an indexed task
/// range.
///
/// The serial algorithm stops at the FIRST failing canonical database; a
/// parallel run may observe failures out of order.  To reproduce the
/// serial answer byte-for-byte, a failure at index i only cancels work at
/// indices strictly greater than i: tasks below i must still run, because
/// one of them may fail at an even smaller index and become the failure
/// the serial run would have reported.  `cutoff()` therefore converges to
/// the minimal failing index — exactly the database the serial loop would
/// have stopped at — and everything merged afterwards is the prefix the
/// serial run would have produced.
class PrefixCancel {
 public:
  static constexpr int64_t kNone = std::numeric_limits<int64_t>::max();

  /// Records a failure at `index`, lowering the cutoff monotonically.
  void FailAt(int64_t index) {
    int64_t current = cutoff_.load(std::memory_order_relaxed);
    while (index < current &&
           !cutoff_.compare_exchange_weak(current, index,
                                          std::memory_order_relaxed)) {
    }
  }

  /// True when the task at `index` still has to run: it is at or below
  /// every failure seen so far.
  bool ShouldRun(int64_t index) const {
    return index <= cutoff_.load(std::memory_order_relaxed);
  }

  bool triggered() const {
    return cutoff_.load(std::memory_order_relaxed) != kNone;
  }

  /// The minimal failing index seen so far (kNone when none).  Only final
  /// once every task at or below the current value has completed.
  int64_t cutoff() const { return cutoff_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> cutoff_{kNone};
};

}  // namespace cqac

#endif  // CQAC_RUNTIME_CANCELLATION_H_
