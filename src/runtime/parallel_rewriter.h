#ifndef CQAC_RUNTIME_PARALLEL_REWRITER_H_
#define CQAC_RUNTIME_PARALLEL_REWRITER_H_

#include <cstdint>

#include "rewriting/equiv_rewriter.h"

namespace cqac {

class MemoCache;
class ThreadPool;

/// Scheduling telemetry of one ParallelRewrite call — how the fan-out and
/// the cooperative cancellation behaved.  Unlike RewriteStats (which,
/// absent a memo cache, is byte-identical to the serial run by
/// construction), these counters describe the parallel execution itself
/// and legitimately vary run to run: a canceled task is work the
/// early-abort saved.
struct ParallelRewriteReport {
  int jobs = 0;  // worker threads used

  int64_t db_tasks_total = 0;      // canonical databases fanned out
  int64_t db_tasks_executed = 0;   // ran to completion
  int64_t db_tasks_cancelled = 0;  // skipped by the cancellation token

  int64_t phase2_tasks_total = 0;
  int64_t phase2_tasks_executed = 0;
  int64_t phase2_tasks_cancelled = 0;

  int64_t cache_hits = 0;    // Phase-2 verdicts served from the memo
  int64_t cache_misses = 0;  // Phase-2 verdicts computed

  int64_t tasks_stolen = 0;  // pool-level: tasks taken from a sibling queue
};

/// The parallel rewriting driver: Phase 1's per-canonical-database work
/// units and Phase 2's per-Pre-Rewriting containment checks are fanned
/// out over a work-stealing thread pool, per-task RewriteStats are merged
/// in enumeration order, and a prefix-cancellation token aborts all
/// in-flight work past the first failing database (the paper's "some D_i
/// has no MCR => no rewriting exists" short-circuit).
///
/// Deterministic by construction: with `memo == nullptr` the result —
/// outcome, rewriting, failure reason, trace, and stats — is
/// byte-identical to EquivalentRewriter's serial run for every thread
/// count and task interleaving.  See docs/ALGORITHM.md ("Parallel
/// runtime") for the argument.  With a memo cache the *answer* (outcome,
/// rewriting, failure reason, trace) is still byte-identical — verdicts
/// are pure functions of their keys — but the work counter
/// `stats.phase2_orders` is not: a cached verdict enumerates 0 orders,
/// and which checks hit depends on the cache's prior contents and, under
/// a shared cache, on scheduling (two threads can race the same key to
/// a double miss).  The same applies to `report->cache_hits/misses`.
///
/// `options.jobs` selects the thread count (0 = hardware concurrency)
/// unless `pool` is supplied, in which case its threads are used and the
/// pool may be shared with other concurrent work.  `memo`, when non-null,
/// memoizes Phase-2 containment verdicts.  `report`, when non-null,
/// receives scheduling telemetry.
RewriteResult ParallelRewrite(const ConjunctiveQuery& query,
                              const ViewSet& views,
                              const RewriteOptions& options,
                              MemoCache* memo = nullptr,
                              ThreadPool* pool = nullptr,
                              ParallelRewriteReport* report = nullptr);

/// The same driver over a prebuilt work context — the parallel twin of
/// RunPreparedRewriteSerial (rewriting/equiv_rewriter.h), used by a
/// ViewCatalog to fan out many requests over one compiled RewriteWork.
/// `driver` supplies the scheduling knobs (jobs, cancel,
/// max_canonical_databases, phase1_dedup); phase semantics come from
/// work.options.  `phase1_memo`, when non-null, must belong to `work` and
/// may persist across calls; when null a run-local memo is created per
/// driver.phase1_dedup.  The caller must have handled the
/// unsatisfiable-query shortcut.
RewriteResult ParallelRewritePrepared(const RewriteWork& work,
                                      const RewriteOptions& driver,
                                      MemoCache* memo = nullptr,
                                      ThreadPool* pool = nullptr,
                                      ParallelRewriteReport* report = nullptr,
                                      Phase1Memo* phase1_memo = nullptr);

}  // namespace cqac

#endif  // CQAC_RUNTIME_PARALLEL_REWRITER_H_
