#include "runtime/task_queue.h"

#include <utility>

namespace cqac {

void TaskQueue::Push(Task task) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.push_back(std::move(task));
}

bool TaskQueue::TryPop(Task* task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tasks_.empty()) return false;
  *task = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

bool TaskQueue::TrySteal(Task* task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tasks_.empty()) return false;
  *task = std::move(tasks_.back());
  tasks_.pop_back();
  return true;
}

size_t TaskQueue::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

bool TaskQueue::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.empty();
}

}  // namespace cqac
