#ifndef CQAC_RUNTIME_MEMO_CACHE_H_
#define CQAC_RUNTIME_MEMO_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/query.h"

namespace cqac {

/// Aggregated counters of a MemoCache / DedupTable.
struct MemoCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
};

/// A sharded, mutex-striped LRU cache of boolean verdicts keyed by
/// normalized strings — in this codebase, containment-check verdicts
/// keyed by ContainmentMemoKey.
///
/// Shards are selected by key hash; each shard holds its own mutex, LRU
/// list, and counters, so concurrent lookups from the rewriting runtime's
/// worker threads stripe across `num_shards` locks instead of serializing
/// on one.  Verdicts are pure functions of their normalized key, so
/// sharing a cache across threads (or across jobs in the batch driver)
/// never changes results — only how much work is repeated.
class MemoCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards
  /// (minimum 1 per shard).
  explicit MemoCache(size_t capacity = 1 << 16, int num_shards = 16);

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// The cached verdict for `key`, refreshing its recency; nullopt on
  /// miss.
  std::optional<bool> Get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the shard's least recently
  /// used entry when the shard is full.
  void Put(const std::string& key, bool value);

  /// Counters summed over all shards.
  MemoCacheStats Stats() const;

  /// Entries currently resident, summed over all shards.
  size_t size() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.  The map points into the list.
    std::list<std::pair<std::string, bool>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, bool>>::iterator>
        index;
    MemoCacheStats stats;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A sharded insert-only set used to deduplicate canonical-database
/// products (Pre-Rewriting keys) across worker threads: the first thread
/// to insert a key wins.  Note the *output* dedup of a deterministic run
/// happens during the ordered merge; this table exists so threads can
/// cheaply skip work whose product is already known globally.
class DedupTable {
 public:
  explicit DedupTable(int num_shards = 16);

  DedupTable(const DedupTable&) = delete;
  DedupTable& operator=(const DedupTable&) = delete;

  /// True when `key` was not present (first insertion).
  bool Insert(const std::string& key);

  bool Contains(const std::string& key) const;

  int64_t size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<std::string> keys;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A 128-bit structural fingerprint (two independently seeded 64-bit
/// mixes) of a Phase-1 memo key.  Fingerprints index the Phase1Memo
/// shards; entries always carry the full key and a hit is only declared
/// after the keys compare equal — never trust the hash alone.
struct Phase1Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Phase1Fingerprint& a,
                         const Phase1Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// Fingerprints a Phase-1 memo key (deterministic across runs/platforms).
Phase1Fingerprint FingerprintPhase1Key(const std::string& key);

/// What Phase 1 concluded about one canonical database, keyed by the
/// database's structural key: the unfrozen view-tuple multiset plus the
/// variable -> block-representative map.  Canonical databases with equal
/// keys provably keep the same MCD set, pass or fail the combination
/// check together, and assemble the same Pre-Rewriting body — so the
/// conclusion is shared and only the order-dependent comparisons are
/// rebuilt per database.
struct Phase1Entry {
  std::string key;  // full key, compared on every hit
  bool combination_exists = false;
  int64_t mcds_kept = 0;
  /// Surviving MCD indices (deduplicated, fold-dropped, sorted by tuple
  /// rank) and the body's variables in first-occurrence order; valid only
  /// within the run (RewriteWork) that produced them, which is why a
  /// Phase1Memo must never outlive or be shared across runs.
  std::vector<int> body_mcds;
  std::vector<std::string> body_vars;
};

/// A sharded, insert-only memo from canonical-database fingerprints to
/// Phase-1 conclusions, shared by the worker threads of one rewriting
/// run.  Entries are verified on hit (full key comparison) and the first
/// writer wins; inserts beyond the capacity are dropped — the memo is an
/// accelerator, never a source of truth.  Unlike MemoCache, entries are
/// meaningful only within a single run: keys do not identify the query or
/// views, so a Phase1Memo is created per run and discarded with it.
class Phase1Memo {
 public:
  explicit Phase1Memo(size_t capacity = 1 << 16, int num_shards = 16);

  Phase1Memo(const Phase1Memo&) = delete;
  Phase1Memo& operator=(const Phase1Memo&) = delete;

  /// Copies the entry for (`fp`, `key`) into `*out`; false on miss.
  bool Get(const Phase1Fingerprint& fp, const std::string& key,
           Phase1Entry* out);

  /// Inserts `entry` (whose key must fingerprint to `fp`) unless an equal
  /// entry exists or the shard is full.
  void Put(const Phase1Fingerprint& fp, Phase1Entry entry);

  /// Counters summed over all shards (evictions counts dropped inserts).
  MemoCacheStats Stats() const;

  size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, Phase1Entry>>>
        buckets;  // fp.lo -> [(fp.hi, entry)]
    size_t entries = 0;
    MemoCacheStats stats;
  };

  Shard& ShardFor(const Phase1Fingerprint& fp);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A canonical key for a query: atoms and comparisons rendered with every
/// variable renamed to its first-occurrence index (`?0`, `?1`, ...), so
/// alpha-equivalent queries — equal up to a consistent renaming of
/// variables — produce equal keys.  Head predicate names are dropped
/// (containment ignores them); body predicate names are kept.
std::string NormalizedQueryKey(const ConjunctiveQuery& q);

/// The memo key for the containment check `q1 ⊑ q2`: the two normalized
/// keys joined with a direction marker.  The two queries are closed
/// formulas, so they are normalized independently.
std::string ContainmentMemoKey(const ConjunctiveQuery& q1,
                               const ConjunctiveQuery& q2);

namespace internal {

/// Test-only fingerprint narrowing: with `bits` in [1, 64], every
/// Phase-1 fingerprint keeps only the low `bits` bits of each 64-bit
/// half, so distinct keys collide constantly; 0 (the default) restores
/// the full 128 bits.  Natural 128-bit collisions are unobservable in a
/// test's lifetime — this hook is how the verify-on-hit path gets real
/// coverage.  Relaxed atomic: flip only between runs.
void SetPhase1FingerprintBitsForTest(int bits);
int Phase1FingerprintBitsForTest();

/// Test-only fault injection: while disabled, Phase1Memo::Get trusts the
/// fingerprint alone and skips the full-key compare — exactly the wrong-
/// reuse bug verify-on-hit exists to prevent.  Combined with fingerprint
/// narrowing (cqacfuzz --inject-fault memo), the differential harness
/// must detect the resulting disagreement and shrink it; that detection
/// is the acceptance test for the whole fuzzing subsystem.
void SetPhase1MemoVerifyOnHitForTest(bool enabled);
bool Phase1MemoVerifyOnHitForTest();

}  // namespace internal

}  // namespace cqac

#endif  // CQAC_RUNTIME_MEMO_CACHE_H_
