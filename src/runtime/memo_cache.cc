#include "runtime/memo_cache.h"

#include <functional>
#include <utility>

#include "ast/comparison.h"

namespace cqac {

// ---------------------------------------------------------------------------
// MemoCache
// ---------------------------------------------------------------------------

MemoCache::MemoCache(size_t capacity, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  per_shard_capacity_ = capacity / static_cast<size_t>(num_shards);
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MemoCache::Shard& MemoCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

const MemoCache::Shard& MemoCache::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

std::optional<bool> MemoCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void MemoCache::Put(const std::string& key, bool value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
  shard.lru.emplace_front(key, value);
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
}

MemoCacheStats MemoCache::Stats() const {
  MemoCacheStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

size_t MemoCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// DedupTable
// ---------------------------------------------------------------------------

DedupTable::DedupTable(int num_shards) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

DedupTable::Shard& DedupTable::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

const DedupTable::Shard& DedupTable::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

bool DedupTable::Insert(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.keys.insert(key).second;
}

bool DedupTable::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.keys.count(key) > 0;
}

int64_t DedupTable::size() const {
  int64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<int64_t>(shard->keys.size());
  }
  return total;
}

// ---------------------------------------------------------------------------
// Key normalization
// ---------------------------------------------------------------------------

namespace {

/// Renames variables to ?0, ?1, ... in first-occurrence order.
class VariableNormalizer {
 public:
  void AppendTerm(const Term& t, std::string* out) {
    if (t.IsConstant()) {
      *out += t.value().ToString();
      return;
    }
    auto [it, inserted] = ids_.emplace(t.name(), ids_.size());
    *out += '?';
    *out += std::to_string(it->second);
  }

 private:
  std::unordered_map<std::string, size_t> ids_;
};

}  // namespace

std::string NormalizedQueryKey(const ConjunctiveQuery& q) {
  VariableNormalizer norm;
  std::string key;
  key.reserve(64);
  // Head: arity and argument pattern only; the predicate name carries no
  // containment semantics.
  key += '(';
  for (const Term& t : q.head().args()) {
    norm.AppendTerm(t, &key);
    key += ',';
  }
  key += ')';
  for (const Atom& a : q.body()) {
    key += a.predicate();
    key += '(';
    for (const Term& t : a.args()) {
      norm.AppendTerm(t, &key);
      key += ',';
    }
    key += ')';
  }
  key += '|';
  for (const Comparison& c : q.comparisons()) {
    norm.AppendTerm(c.lhs(), &key);
    key += CompOpToString(c.op());
    norm.AppendTerm(c.rhs(), &key);
    key += ';';
  }
  return key;
}

std::string ContainmentMemoKey(const ConjunctiveQuery& q1,
                               const ConjunctiveQuery& q2) {
  std::string key = NormalizedQueryKey(q1);
  key += "<=";
  key += NormalizedQueryKey(q2);
  return key;
}

}  // namespace cqac
