#include "runtime/memo_cache.h"

#include <atomic>
#include <functional>
#include <utility>

#include "ast/comparison.h"

namespace cqac {

// ---------------------------------------------------------------------------
// MemoCache
// ---------------------------------------------------------------------------

MemoCache::MemoCache(size_t capacity, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  per_shard_capacity_ = capacity / static_cast<size_t>(num_shards);
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MemoCache::Shard& MemoCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

const MemoCache::Shard& MemoCache::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

std::optional<bool> MemoCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void MemoCache::Put(const std::string& key, bool value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
  shard.lru.emplace_front(key, value);
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
}

MemoCacheStats MemoCache::Stats() const {
  MemoCacheStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

size_t MemoCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// DedupTable
// ---------------------------------------------------------------------------

DedupTable::DedupTable(int num_shards) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

DedupTable::Shard& DedupTable::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

const DedupTable::Shard& DedupTable::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

bool DedupTable::Insert(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.keys.insert(key).second;
}

bool DedupTable::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.keys.count(key) > 0;
}

int64_t DedupTable::size() const {
  int64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<int64_t>(shard->keys.size());
  }
  return total;
}

// ---------------------------------------------------------------------------
// Phase1Memo
// ---------------------------------------------------------------------------

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over `key` with a seed, finalized through Mix64.
uint64_t HashKey(const std::string& key, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

namespace internal {

namespace {
std::atomic<int> g_fingerprint_bits{0};
std::atomic<bool> g_verify_on_hit{true};
}  // namespace

void SetPhase1FingerprintBitsForTest(int bits) {
  if (bits < 0) bits = 0;
  if (bits > 64) bits = 64;
  g_fingerprint_bits.store(bits, std::memory_order_relaxed);
}

int Phase1FingerprintBitsForTest() {
  return g_fingerprint_bits.load(std::memory_order_relaxed);
}

void SetPhase1MemoVerifyOnHitForTest(bool enabled) {
  g_verify_on_hit.store(enabled, std::memory_order_relaxed);
}

bool Phase1MemoVerifyOnHitForTest() {
  return g_verify_on_hit.load(std::memory_order_relaxed);
}

}  // namespace internal

Phase1Fingerprint FingerprintPhase1Key(const std::string& key) {
  Phase1Fingerprint fp;
  fp.hi = HashKey(key, 0x5851f42d4c957f2dULL);
  fp.lo = HashKey(key, 0x14057b7ef767814fULL);
  const int bits = internal::Phase1FingerprintBitsForTest();
  if (bits > 0 && bits < 64) {
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    fp.hi &= mask;
    fp.lo &= mask;
  }
  return fp;
}

Phase1Memo::Phase1Memo(size_t capacity, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  per_shard_capacity_ = capacity / static_cast<size_t>(num_shards);
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Phase1Memo::Shard& Phase1Memo::ShardFor(const Phase1Fingerprint& fp) {
  return *shards_[fp.lo % shards_.size()];
}

bool Phase1Memo::Get(const Phase1Fingerprint& fp, const std::string& key,
                     Phase1Entry* out) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.buckets.find(fp.lo);
  if (it != shard.buckets.end()) {
    // The verify-on-hit key compare can only be skipped by the test-only
    // fault-injection hook; cqacfuzz --inject-fault memo proves the
    // harness catches the wrong reuse that skipping it permits.
    const bool verify = internal::Phase1MemoVerifyOnHitForTest();
    for (const auto& [hi, entry] : it->second) {
      // Verify-on-hit: a 128-bit collision of distinct keys must stay a
      // miss, never a wrong answer.
      if (hi == fp.hi && (!verify || entry.key == key)) {
        ++shard.stats.hits;
        *out = entry;
        return true;
      }
    }
  }
  ++shard.stats.misses;
  return false;
}

void Phase1Memo::Put(const Phase1Fingerprint& fp, Phase1Entry entry) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& bucket = shard.buckets[fp.lo];
  for (const auto& [hi, existing] : bucket) {
    if (hi == fp.hi && existing.key == entry.key) return;  // First wins.
  }
  if (shard.entries >= per_shard_capacity_) {
    ++shard.stats.evictions;  // Dropped insert; the memo stays bounded.
    return;
  }
  bucket.emplace_back(fp.hi, std::move(entry));
  ++shard.entries;
  ++shard.stats.insertions;
}

MemoCacheStats Phase1Memo::Stats() const {
  MemoCacheStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

size_t Phase1Memo::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Key normalization
// ---------------------------------------------------------------------------

namespace {

/// Renames variables to ?0, ?1, ... in first-occurrence order.
class VariableNormalizer {
 public:
  void AppendTerm(const Term& t, std::string* out) {
    if (t.IsConstant()) {
      *out += t.value().ToString();
      return;
    }
    auto [it, inserted] = ids_.emplace(t.name(), ids_.size());
    *out += '?';
    *out += std::to_string(it->second);
  }

 private:
  std::unordered_map<std::string, size_t> ids_;
};

}  // namespace

std::string NormalizedQueryKey(const ConjunctiveQuery& q) {
  VariableNormalizer norm;
  std::string key;
  key.reserve(64);
  // Head: arity and argument pattern only; the predicate name carries no
  // containment semantics.
  key += '(';
  for (const Term& t : q.head().args()) {
    norm.AppendTerm(t, &key);
    key += ',';
  }
  key += ')';
  for (const Atom& a : q.body()) {
    key += a.predicate();
    key += '(';
    for (const Term& t : a.args()) {
      norm.AppendTerm(t, &key);
      key += ',';
    }
    key += ')';
  }
  key += '|';
  for (const Comparison& c : q.comparisons()) {
    norm.AppendTerm(c.lhs(), &key);
    key += CompOpToString(c.op());
    norm.AppendTerm(c.rhs(), &key);
    key += ';';
  }
  return key;
}

std::string ContainmentMemoKey(const ConjunctiveQuery& q1,
                               const ConjunctiveQuery& q2) {
  std::string key = NormalizedQueryKey(q1);
  key += "<=";
  key += NormalizedQueryKey(q2);
  return key;
}

}  // namespace cqac
