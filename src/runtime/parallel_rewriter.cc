#include "runtime/parallel_rewriter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "constraints/ac_solver.h"
#include "constraints/orders.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/cancellation.h"
#include "runtime/memo_cache.h"
#include "runtime/thread_pool.h"

namespace cqac {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Countdown latch: the main thread blocks until every fanned-out task
/// has called Done (whether it executed or was cancelled).  The mutex
/// also publishes the tasks' writes to their result slots.
class Latch {
 public:
  explicit Latch(int64_t count) : remaining_(count) {}

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t remaining_;
};

/// One canonical database's slot in the Phase-1 sliding window.  The
/// slot for enumeration index i is slots[i % window]; `done` is guarded
/// by the window mutex, which also publishes the task's `outcome` write
/// to the merging thread.
struct DbSlot {
  TotalOrder order;
  bool done = false;
  DatabaseOutcome outcome;
};

/// One Pre-Rewriting's slot in the Phase-2 fan-out.
struct Phase2Slot {
  bool executed = false;
  Phase2Outcome outcome;
};

/// After a run, folds the parallel-specific counters into the global
/// metrics registry.  `RecordRewriteMetrics` handles the stats shared
/// with the serial path; this adds what only the parallel driver knows.
void RecordParallelMetrics(const ParallelRewriteReport& report) {
  if (!obs::MetricsActive()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.counter("parallel.db_tasks_executed").Add(report.db_tasks_executed);
  reg.counter("parallel.db_tasks_cancelled").Add(report.db_tasks_cancelled);
  reg.counter("parallel.phase2_tasks_executed")
      .Add(report.phase2_tasks_executed);
  reg.counter("parallel.phase2_tasks_cancelled")
      .Add(report.phase2_tasks_cancelled);
  reg.counter("threadpool.tasks_stolen").Add(report.tasks_stolen);
  reg.counter("memo_cache.hits").Add(report.cache_hits);
  reg.counter("memo_cache.misses").Add(report.cache_misses);
}

RewriteResult ParallelRewritePreparedImpl(const RewriteWork& work,
                                          const RewriteOptions& options,
                                          MemoCache* memo, ThreadPool* pool,
                                          ParallelRewriteReport* report,
                                          Phase1Memo* external_p1_memo) {
  RewriteResult result;
  const bool explain = work.options.explain;

  // Own a pool only if the caller did not share one.
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool =
        std::make_unique<ThreadPool>(ThreadPool::ResolveJobs(options.jobs));
    pool = owned_pool.get();
  }
  report->jobs = pool->num_threads();
  const int64_t stolen_before = pool->tasks_stolen();

  result.stats.v0_variants = static_cast<int64_t>(work.v0_variants.size());
  result.stats.mcds_formed = static_cast<int64_t>(work.mcds.size());
  result.tier = static_cast<int>(work.tier.tier);
  result.tier_reason = work.tier.reason;

  // One Phase-1 memo per run unless the caller passed a catalog-scoped
  // one, shared by every worker (sharded; first writer wins).  Which
  // worker takes the miss for a given structural key races, so the
  // per-database hit/miss *split* can differ from the serial run's — but
  // every replayed conclusion is verified against the full key, so
  // outcomes, Pre-Rewritings, and the hit+miss total are byte-identical
  // to serial.
  std::optional<Phase1Memo> phase1_memo;
  if (external_p1_memo == nullptr && options.phase1_dedup && !explain) {
    phase1_memo.emplace();
  }
  Phase1Memo* const p1_memo =
      external_p1_memo != nullptr
          ? external_p1_memo
          : (phase1_memo ? &*phase1_memo : nullptr);

  // --- Phase 1 fan-out: one task per canonical database, streamed ---
  //
  // The number of total orders is factorial in |variables| + |constants|,
  // and the serial loop streams them with O(1) memory.  Materializing the
  // whole worklist before submitting could therefore OOM before any task
  // runs when no database budget is set, so only a bounded window of
  // orders is ever in flight: the main thread enumerates lazily, submits
  // index i into ring slot i % window, and merges completed slots in
  // enumeration order — the ordered merge replays the serial loop — to
  // free them for reuse.  The serial path aborts upon *enumerating*
  // database max+1, after fully processing the first max; the streaming
  // loop reproduces that by stopping enumeration at the budget.
  const int64_t window =
      std::max<int64_t>(static_cast<int64_t>(pool->num_threads()) * 8, 64);
  std::vector<DbSlot> db_slots(static_cast<size_t>(window));
  std::mutex win_mu;
  std::condition_variable win_cv;
  PrefixCancel db_cancel;
  std::atomic<int64_t> db_executed{0};
  // Steady-clock time of the first observed failure, or 0; lets the
  // drain below report how long cancellation took to quiesce the pool.
  std::atomic<int64_t> first_fail_ns{0};

  std::vector<ConjunctiveQuery> pre_rewritings;
  std::set<std::string> pre_rewriting_keys;
  int64_t submitted = 0;  // tasks handed to the pool
  int64_t merged = 0;     // slots replayed into the result, in order
  bool failed = false;
  bool abort_pending = false;
  const CancellationToken* const cancel = options.cancel;

  // Waits for the task at enumeration index `merged` and frees its slot.
  // When `replay` is set, first reproduces the serial loop's handling of
  // the outcome (stats, trace, dedup, first-failure capture); after a
  // failure the remaining in-flight slots are drained without replaying,
  // exactly as the serial loop never visits them.
  const auto consume_next = [&](bool replay) {
    DbSlot& slot = db_slots[static_cast<size_t>(merged % window)];
    {
      std::unique_lock<std::mutex> lock(win_mu);
      win_cv.wait(lock, [&] { return slot.done; });
      slot.done = false;
    }
    ++merged;
    if (!replay) {
      slot.outcome = DatabaseOutcome();
      return;
    }
    ++result.stats.canonical_databases;
    result.stats.Merge(slot.outcome.stats);
    if (explain) {
      result.trace.databases.push_back(std::move(slot.outcome.trace));
    }
    if (slot.outcome.status == DatabaseOutcome::Status::kFailed) {
      failed = true;
      result.failure_reason = std::move(slot.outcome.failure_reason);
    } else if (slot.outcome.status == DatabaseOutcome::Status::kKept &&
               pre_rewriting_keys.insert(slot.outcome.pre_rewriting->ToString())
                   .second) {
      pre_rewritings.push_back(*std::move(slot.outcome.pre_rewriting));
    }
    slot.outcome = DatabaseOutcome();
  };

  const int64_t enumerate_t0 = NowNs();
  {
    CQAC_TRACE_SPAN("phase1.enumerate");
    int64_t enumerated = 0;
    ForEachTotalOrder(
        work.query.AllVariables(), work.constants,
        [&](const TotalOrder& order) {
          if (cancel != nullptr && cancel->cancelled()) return false;
          ++enumerated;
          if (options.max_canonical_databases >= 0 &&
              enumerated > options.max_canonical_databases) {
            abort_pending = true;
            return false;
          }
          // Reusing ring slot i % window requires its previous occupant
          // (index i - window) to have been merged first.
          while (submitted - merged >= window) {
            consume_next(/*replay=*/true);
            if (failed) return false;
          }
          const int64_t i = submitted;
          db_slots[static_cast<size_t>(i % window)].order = order;
          pool->Submit([&, i] {
            DbSlot& slot = db_slots[static_cast<size_t>(i % window)];
            // First failing D_i cancels everything past it; work at or
            // below the cutoff must still run so the merge reproduces
            // the serial prefix (see PrefixCancel).
            if (db_cancel.ShouldRun(i) &&
                (cancel == nullptr || !cancel->cancelled())) {
              slot.outcome =
                  ProcessCanonicalDatabase(work, slot.order, p1_memo);
              db_executed.fetch_add(1, std::memory_order_relaxed);
              if (slot.outcome.status == DatabaseOutcome::Status::kFailed) {
                db_cancel.FailAt(i);
                if (obs::MetricsActive()) {
                  int64_t expected = 0;
                  first_fail_ns.compare_exchange_strong(
                      expected, NowNs(), std::memory_order_relaxed);
                }
              }
            }
            // Notify while holding the lock: the merging thread owns
            // win_cv's stack frame and may destroy it the moment it can
            // observe `done`, which the lock delays until the notify has
            // returned.
            std::lock_guard<std::mutex> lock(win_mu);
            slot.done = true;
            win_cv.notify_all();
          });
          ++submitted;
          return true;
        });

    // Replay the tail in order; after a failure only drain, never replay —
    // every submitted task must finish before its captured state dies.
    while (merged < submitted) consume_next(/*replay=*/!failed);
  }
  result.stats.enumeration_ns = NowNs() - enumerate_t0;

  report->db_tasks_total = submitted;
  report->db_tasks_executed = db_executed.load();
  report->db_tasks_cancelled = submitted - report->db_tasks_executed;
  report->tasks_stolen = pool->tasks_stolen() - stolen_before;
  if (obs::MetricsActive()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.gauge("threadpool.max_queue_depth").Max(pool->max_queue_depth());
    const int64_t fail_ns = first_fail_ns.load(std::memory_order_relaxed);
    if (fail_ns != 0) {
      reg.histogram("parallel.cancel_drain_ns").Observe(NowNs() - fail_ns);
    }
  }

  // The cancellation re-check must precede every other verdict: a task
  // that observed the token mid-flight skipped its database, so any
  // conclusion drawn from the merged outcomes would be built on partial
  // work.  The token is monotonic, so re-checking here catches a cancel
  // that landed after the last enumeration callback.
  if (cancel != nullptr && cancel->cancelled()) {
    result.outcome = RewriteOutcome::kAborted;
    result.failure_reason = kCancelledReason;
    return result;
  }
  if (failed) {
    result.outcome = RewriteOutcome::kNoRewriting;
    return result;
  }
  if (abort_pending) {
    // The serial loop counts the abort-triggering database before
    // stopping.
    ++result.stats.canonical_databases;
    result.outcome = RewriteOutcome::kAborted;
    result.failure_reason = "canonical database budget exceeded";
    return result;
  }
  if (pre_rewritings.empty()) {
    result.outcome = RewriteOutcome::kNoRewriting;
    result.failure_reason = "query computes its head on no canonical database";
    return result;
  }

  // --- Phase 2 fan-out: one containment check per Pre-Rewriting ---

  const int64_t num_pres = static_cast<int64_t>(pre_rewritings.size());
  report->phase2_tasks_total = num_pres;
  std::vector<Phase2Slot> p2_slots(static_cast<size_t>(num_pres));
  PrefixCancel p2_cancel;
  std::atomic<int64_t> p2_executed{0};
  std::atomic<int64_t> p2_first_fail_ns{0};
  {
    Latch latch(num_pres);
    for (int64_t i = 0; i < num_pres; ++i) {
      pool->Submit([&, i] {
        if (p2_cancel.ShouldRun(i) &&
            (cancel == nullptr || !cancel->cancelled())) {
          Phase2Slot& slot = p2_slots[static_cast<size_t>(i)];
          slot.outcome =
              CheckExpansionContained(work, pre_rewritings[i], memo);
          slot.executed = true;
          p2_executed.fetch_add(1, std::memory_order_relaxed);
          if (!slot.outcome.contained) {
            p2_cancel.FailAt(i);
            if (obs::MetricsActive()) {
              int64_t expected = 0;
              p2_first_fail_ns.compare_exchange_strong(
                  expected, NowNs(), std::memory_order_relaxed);
            }
          }
        }
        latch.Done();
      });
    }
    latch.Wait();
  }
  if (obs::MetricsActive()) {
    const int64_t fail_ns = p2_first_fail_ns.load(std::memory_order_relaxed);
    if (fail_ns != 0) {
      obs::MetricsRegistry::Global()
          .histogram("parallel.cancel_drain_ns")
          .Observe(NowNs() - fail_ns);
    }
  }
  report->phase2_tasks_executed = p2_executed.load();
  report->phase2_tasks_cancelled = num_pres - report->phase2_tasks_executed;
  report->tasks_stolen = pool->tasks_stolen() - stolen_before;

  // Same ordering argument as after Phase 1: a token observed by any
  // Phase-2 task means some slots hold no verdict.
  if (cancel != nullptr && cancel->cancelled()) {
    result.outcome = RewriteOutcome::kAborted;
    result.failure_reason = kCancelledReason;
    return result;
  }

  std::map<std::string, bool> phase2_verdicts;
  bool phase2_failed = false;
  for (int64_t i = 0; i < num_pres; ++i) {
    const Phase2Slot& slot = p2_slots[static_cast<size_t>(i)];
    ++result.stats.phase2_checks;
    result.stats.phase2_orders += slot.outcome.orders_enumerated;
    result.stats.phase2_ns += slot.outcome.wall_ns;
    if (slot.outcome.cache_hit) {
      ++report->cache_hits;
    } else {
      ++report->cache_misses;
    }
    if (explain) {
      phase2_verdicts[pre_rewritings[i].ToString()] = slot.outcome.contained;
    }
    if (!slot.outcome.contained) {
      result.outcome = RewriteOutcome::kNoRewriting;
      result.failure_reason = "expansion not contained in the query: " +
                              pre_rewritings[i].ToString();
      phase2_failed = true;
      break;
    }
  }
  if (explain) {
    for (CanonicalDatabaseTrace& db : result.trace.databases) {
      if (db.status != "ok") continue;
      auto it = phase2_verdicts.find(db.pre_rewriting);
      if (it == phase2_verdicts.end()) continue;  // Unchecked after failure.
      db.expansion_contained = it->second;
      if (it->second) {
        db.status = "ok";
        result.trace.left_column.push_back(db.order);
      } else {
        db.status = "phase2-failed";
        result.trace.right_column.push_back(db.order);
      }
    }
  }
  if (phase2_failed) return result;

  FinalizeFoundRewriting(work, std::move(pre_rewritings), &result);
  return result;
}

RewriteResult ParallelRewriteImpl(const ConjunctiveQuery& query,
                                  const ViewSet& views,
                                  const RewriteOptions& options,
                                  MemoCache* memo, ThreadPool* pool,
                                  ParallelRewriteReport* report) {
  // A query with contradictory comparisons computes nothing; the empty
  // union is an equivalent rewriting.  (Same early exit as the serial
  // path, before any threads spin up.)
  if (!AcSolver::IsSatisfiable(query.comparisons())) {
    RewriteResult result;
    result.outcome = RewriteOutcome::kRewritingFound;
    result.tier = 0;
    result.tier_reason =
        "query comparisons unsatisfiable; the rewriting is the empty union";
    if (options.verify) {
      result.verified = RewritingIsEquivalent(query, result.rewriting, views);
    }
    return result;
  }

  // --- Shared immutable setup ---

  const RewriteWork work = PrepareRewriteWork(query, views, options);
  return ParallelRewritePreparedImpl(work, options, memo, pool, report,
                                     /*external_p1_memo=*/nullptr);
}

}  // namespace

RewriteResult ParallelRewrite(const ConjunctiveQuery& query,
                              const ViewSet& views,
                              const RewriteOptions& options, MemoCache* memo,
                              ThreadPool* pool,
                              ParallelRewriteReport* report) {
  ParallelRewriteReport local_report;
  if (report == nullptr) report = &local_report;
  RewriteResult result =
      ParallelRewriteImpl(query, views, options, memo, pool, report);
  RecordRewriteMetrics(result.stats);
  RecordParallelMetrics(*report);
  return result;
}

RewriteResult ParallelRewritePrepared(const RewriteWork& work,
                                      const RewriteOptions& driver,
                                      MemoCache* memo, ThreadPool* pool,
                                      ParallelRewriteReport* report,
                                      Phase1Memo* phase1_memo) {
  ParallelRewriteReport local_report;
  if (report == nullptr) report = &local_report;
  RewriteResult result = ParallelRewritePreparedImpl(work, driver, memo, pool,
                                                     report, phase1_memo);
  RecordRewriteMetrics(result.stats);
  RecordParallelMetrics(*report);
  return result;
}

}  // namespace cqac
