#include "runtime/batch_driver.h"

#include <condition_variable>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "catalog/view_catalog.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "rewriting/view_set.h"
#include "runtime/thread_pool.h"

namespace cqac {

namespace {

/// Splits off the first whitespace-delimited word.
std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  const size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return {"", ""};
  const size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) return {line.substr(start), ""};
  const size_t rest = line.find_first_not_of(" \t", end);
  return {line.substr(start, end - start),
          rest == std::string::npos ? "" : line.substr(rest)};
}

}  // namespace

std::vector<BatchJob> ParseJobStream(std::istream& in) {
  std::vector<BatchJob> jobs;
  BatchJob current;
  bool current_nonempty = false;

  auto flush = [&] {
    if (!current_nonempty) return;
    if (!current.query.has_value() && current.error.empty()) {
      current.error = "job has views but no query";
    }
    jobs.push_back(std::move(current));
    current = BatchJob();
    current_nonempty = false;
  };

  std::string line;
  while (std::getline(in, line)) {
    auto [command, args] = SplitCommand(line);
    if (command.empty()) {  // Blank line separates jobs.
      flush();
      continue;
    }
    if (command[0] == '%' || command[0] == '#') continue;
    if (command == "run" || command == "---") {
      flush();
      continue;
    }
    if (!current.error.empty()) continue;  // Skip the rest of a bad block.
    if (command == "view") {
      std::string error;
      std::optional<ConjunctiveQuery> rule = Parser::ParseRule(args, &error);
      if (!rule.has_value()) {
        current.error = "bad view: " + error;
      } else if (current.views.Find(rule->name()) != nullptr) {
        current.error = "duplicate view '" + rule->name() + "'";
      } else {
        current.views.Add(*std::move(rule));
      }
      current_nonempty = true;
    } else if (command == "query") {
      std::string error;
      std::optional<ConjunctiveQuery> rule = Parser::ParseRule(args, &error);
      if (!rule.has_value()) {
        current.error = "bad query: " + error;
      } else if (!rule->IsSafe()) {
        current.error = "unsafe query";
      } else {
        current.query = *std::move(rule);
      }
      current_nonempty = true;
    } else {
      current.error = "unknown directive '" + command + "'";
      current_nonempty = true;
    }
  }
  flush();
  return jobs;
}

BatchJob ParseJobBlock(const std::string& text) {
  std::istringstream in(text);
  std::vector<BatchJob> jobs = ParseJobStream(in);
  if (jobs.empty()) {
    BatchJob job;
    job.error = "empty job";
    return job;
  }
  if (jobs.size() > 1) {
    BatchJob job;
    job.error = "request contains " + std::to_string(jobs.size()) +
                " jobs; send one job per request";
    return job;
  }
  return std::move(jobs.front());
}

std::string RenderJobResult(size_t index, const BatchJob& job,
                            const RewriteResult& result, bool echo) {
  std::ostringstream out;
  out << "job " << index << ": ";
  if (echo && job.query.has_value()) {
    out << "\n  query " << job.query->ToString() << "\n";
    for (const ConjunctiveQuery& v : job.views.views()) {
      out << "  view " << v.ToString() << "\n";
    }
    out << "  => ";
  }
  switch (result.outcome) {
    case RewriteOutcome::kRewritingFound:
      out << "equivalent rewriting (" << result.rewriting.size()
          << " disjunct" << (result.rewriting.size() == 1 ? "" : "s")
          << ")\n";
      for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
        out << "  " << d.ToString() << "\n";
      }
      break;
    case RewriteOutcome::kNoRewriting:
      out << "no equivalent rewriting";
      if (!result.failure_reason.empty()) {
        out << " (" << result.failure_reason << ")";
      }
      out << "\n";
      break;
    case RewriteOutcome::kAborted:
      out << "aborted: " << result.failure_reason << "\n";
      break;
  }
  return out.str();
}

std::string RenderJobError(size_t index, const std::string& error) {
  return "job " + std::to_string(index) + ": error: " + error + "\n";
}

void WriteBatchFooter(std::ostream& out, const BatchSummary& summary,
                      const BatchOptions& options) {
  out << "batch: " << summary.jobs_total << " jobs, " << summary.found
      << " found, " << summary.none << " none, " << summary.aborted
      << " aborted, " << summary.deadline_exceeded << " deadline-exceeded, "
      << summary.rejected << " rejected, " << summary.errors << " errors\n";
  out << "cache: " << summary.cache.hits << " hits, " << summary.cache.misses
      << " misses, " << summary.cache.evictions << " evictions\n";
  if (summary.catalog_enabled) {
    out << "catalog: " << summary.catalogs_built << " built, epoch "
        << summary.catalog_epoch << ", " << summary.catalog_plans_built
        << " plans built, " << summary.catalog_plan_hits << " plan hits, "
        << summary.catalog_semantic_hits << " semantic hits, "
        << summary.catalog_semantic_misses << " semantic misses\n";
  }
  if (options.print_stats) {
    out << "phase-1: " << summary.rewrite.canonical_databases
        << " databases visited, "
        << summary.rewrite.canonical_databases -
               summary.rewrite.kept_canonical_databases
        << " pruned, " << summary.rewrite.phase1_memo_hits
        << " deduped (memo hits), " << summary.rewrite.phase1_memo_misses
        << " computed in full\n";
    out << "phase-times: enumeration " << summary.rewrite.enumeration_ns
        << " ns, freeze " << summary.rewrite.freeze_ns << " ns, phase1 "
        << summary.rewrite.phase1_ns << " ns, phase2 "
        << summary.rewrite.phase2_ns << " ns\n";
  }
  if (options.json_summary) {
    out << "{\"schema_version\": " << kStatsJsonSchemaVersion
        << ", \"jobs\": " << summary.jobs_total << ", \"found\": "
        << summary.found << ", \"none\": " << summary.none
        << ", \"aborted\": " << summary.aborted
        << ", \"deadline_exceeded\": " << summary.deadline_exceeded
        << ", \"rejected\": " << summary.rejected << ", \"errors\": "
        << summary.errors << ", \"cache_hits\": " << summary.cache.hits
        << ", \"cache_misses\": " << summary.cache.misses
        << ", \"canonical_databases\": "
        << summary.rewrite.canonical_databases
        << ", \"kept_canonical_databases\": "
        << summary.rewrite.kept_canonical_databases
        << ", \"phase1_memo_hits\": " << summary.rewrite.phase1_memo_hits
        << ", \"phase1_memo_misses\": " << summary.rewrite.phase1_memo_misses
        << ", \"tier1_grid_hits\": " << summary.rewrite.tier1_grid_hits
        << ", \"tier1_grid_misses\": " << summary.rewrite.tier1_grid_misses
        << ", \"tier2_jointree_evals\": "
        << summary.rewrite.tier2_jointree_evals
        << ", \"enumeration_ns\": " << summary.rewrite.enumeration_ns
        << ", \"freeze_ns\": " << summary.rewrite.freeze_ns
        << ", \"phase1_ns\": " << summary.rewrite.phase1_ns
        << ", \"phase2_ns\": " << summary.rewrite.phase2_ns
        << ", \"catalog_enabled\": " << (summary.catalog_enabled ? 1 : 0)
        << ", \"catalogs_built\": " << summary.catalogs_built
        << ", \"catalog_plans_built\": " << summary.catalog_plans_built
        << ", \"catalog_plan_hits\": " << summary.catalog_plan_hits
        << ", \"catalog_semantic_hits\": " << summary.catalog_semantic_hits
        << ", \"catalog_semantic_misses\": "
        << summary.catalog_semantic_misses
        << ", \"catalog_epoch\": " << summary.catalog_epoch << "}\n";
  }
  if (options.print_metrics) {
    obs::MetricsRegistry::Global().DumpText(out);
  }
}

BatchSummary RunBatch(std::istream& in, std::ostream& out,
                      const BatchOptions& options) {
  BatchSummary summary;

  std::vector<BatchJob> jobs;
  {
    CQAC_TRACE_SPAN("batch.parse");
    jobs = ParseJobStream(in);
  }
  summary.jobs_total = static_cast<int64_t>(jobs.size());
  if (jobs.empty()) {
    out << "batch: 0 jobs\n";
    return summary;
  }

  // Each job runs the serial rewriter on one worker; the shared memo
  // cache carries containment verdicts across jobs, so repeated or
  // near-duplicate jobs in a batch get cheaper as the batch proceeds.
  RewriteOptions per_job = options.rewrite;
  per_job.jobs = 1;
  MemoCache memo(options.cache_capacity);
  std::optional<CatalogRegistry> registry;
  if (options.use_catalog) {
    CatalogOptions copts;
    copts.containment_cache_capacity = options.cache_capacity;
    registry.emplace(/*capacity=*/8, copts);
  }
  ThreadPool pool(ThreadPool::ResolveJobs(options.jobs));

  std::vector<std::string> outputs(jobs.size());
  std::vector<RewriteOutcome> outcomes(jobs.size(),
                                       RewriteOutcome::kNoRewriting);
  std::vector<bool> job_errors(jobs.size(), false);
  std::vector<RewriteStats> job_stats(jobs.size());

  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;

  {
  CQAC_TRACE_SPAN("batch.dispatch");
  for (size_t i = 0; i < jobs.size(); ++i) {
    pool.Submit([&, i] {
      // Stamp each job with its own trace id so the flight recorder can
      // attribute worker spans per request, as the server does.
      const obs::RequestScope trace_scope(obs::GenerateTraceId());
      const BatchJob& job = jobs[i];
      std::string rendered;
      bool is_error = false;
      RewriteOutcome outcome = RewriteOutcome::kNoRewriting;
      RewriteStats stats;
      if (!job.error.empty()) {
        rendered = RenderJobError(i, job.error);
        is_error = true;
      } else {
        const RewriteResult result =
            registry.has_value()
                ? registry->GetOrBuild(job.views)->Rewrite(*job.query, per_job)
                : EquivalentRewriter(*job.query, job.views, per_job, &memo)
                      .Run();
        outcome = result.outcome;
        stats = result.stats;
        rendered = RenderJobResult(i, job, result, options.echo);
      }
      std::lock_guard<std::mutex> lock(mu);
      outputs[i] = std::move(rendered);
      outcomes[i] = outcome;
      job_errors[i] = is_error;
      job_stats[i] = stats;
      ++done;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == jobs.size(); });
  }
  }  // batch.dispatch

  // Results print in input order regardless of completion order.
  for (size_t i = 0; i < jobs.size(); ++i) {
    out << outputs[i];
    if (job_errors[i]) {
      ++summary.errors;
    } else {
      switch (outcomes[i]) {
        case RewriteOutcome::kRewritingFound:
          ++summary.found;
          break;
        case RewriteOutcome::kNoRewriting:
          ++summary.none;
          break;
        case RewriteOutcome::kAborted:
          ++summary.aborted;
          break;
      }
    }
  }

  if (registry.has_value()) {
    const CatalogRegistryStats cstats = registry->Stats();
    summary.catalog_enabled = true;
    summary.catalogs_built = cstats.catalogs_built;
    summary.catalog_plans_built = cstats.plans_built;
    summary.catalog_plan_hits = cstats.plan_hits;
    summary.catalog_semantic_hits = cstats.semantic_hits;
    summary.catalog_semantic_misses = cstats.semantic_misses;
    summary.catalog_epoch = cstats.latest_epoch;
    summary.cache = cstats.containment;
  } else {
    summary.cache = memo.Stats();
  }
  for (const RewriteStats& s : job_stats) summary.rewrite.Merge(s);
  if (obs::MetricsActive()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.counter("memo_cache.hits").Add(summary.cache.hits);
    reg.counter("memo_cache.misses").Add(summary.cache.misses);
    reg.counter("memo_cache.evictions").Add(summary.cache.evictions);
    reg.counter("batch.jobs").Add(summary.jobs_total);
    reg.gauge("threadpool.max_queue_depth").Max(pool.max_queue_depth());
    reg.counter("threadpool.tasks_stolen").Add(pool.tasks_stolen());
  }
  WriteBatchFooter(out, summary, options);
  return summary;
}

}  // namespace cqac
