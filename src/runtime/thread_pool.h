#ifndef CQAC_RUNTIME_THREAD_POOL_H_
#define CQAC_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/task_queue.h"

namespace cqac {

/// A fixed-size thread pool with one work-stealing TaskQueue per worker.
///
/// Submit() distributes tasks round-robin across the per-worker queues
/// (or onto the submitting worker's own queue when called from inside the
/// pool, so recursively spawned work stays local).  An idle worker drains
/// its own queue oldest-first, then scans the other queues in ring order
/// stealing newest-first (see TaskQueue for why the ends are assigned this
/// way), then sleeps on a condition variable until new work arrives.
///
/// The destructor drains every queue — all submitted tasks run — and then
/// joins the workers, so a pool can be destroyed immediately after its
/// last Submit without losing work.
class ThreadPool {
 public:
  using Task = TaskQueue::Task;

  /// `num_threads == 0` means std::thread::hardware_concurrency() (at
  /// least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Thread-safe; callable from inside pool tasks.
  void Submit(Task task);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Tasks executed so far (monotonic; approximate while running).
  int64_t tasks_executed() const { return executed_.load(); }

  /// Tasks obtained by stealing from another worker's queue.
  int64_t tasks_stolen() const { return stolen_.load(); }

  /// Highest number of submitted-but-not-started tasks observed at any
  /// Submit (monotonic; approximate while running).
  int64_t max_queue_depth() const { return max_depth_.load(); }

  /// Resolves a user-facing jobs count: 0 -> hardware concurrency,
  /// otherwise clamped to at least 1.
  static int ResolveJobs(int jobs);

  /// Largest worker-thread count any user-facing jobs flag accepts.  A
  /// pool of more threads than this is a configuration mistake, not a
  /// workload: each worker owns a queue and a stack, and every idle
  /// worker scans all queues when stealing.
  static constexpr int kMaxJobs = 4096;

  /// The one parser behind every jobs flag (`cqacsh --jobs`, the shell's
  /// `rewrite jobs=N`, `cqacd --jobs`): a base-10 non-negative integer
  /// with no trailing garbage, at most kMaxJobs (0 = hardware
  /// concurrency).  On failure returns false and, when `error` is
  /// non-null, sets it to a complete "--flag needs ..."-style reason
  /// without the flag name.
  static bool ParseJobsFlag(const std::string& text, int* jobs,
                            std::string* error = nullptr);

 private:
  void WorkerLoop(int worker_index);

  /// Pops from the worker's own queue or steals from a sibling.
  bool NextTask(int worker_index, Task* task);

  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_;
  // Submitted, not yet started.  Incremented under mu_ (after the push)
  // so the transition is serialized with the workers' wait predicate;
  // may be transiently negative when a worker pops a task before its
  // submitter's increment.
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<uint64_t> next_queue_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> stolen_{0};
  std::atomic<int64_t> max_depth_{0};
};

}  // namespace cqac

#endif  // CQAC_RUNTIME_THREAD_POOL_H_
