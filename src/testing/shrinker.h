#ifndef CQAC_TESTING_SHRINKER_H_
#define CQAC_TESTING_SHRINKER_H_

#include <functional>
#include <string>

#include "testing/corpus.h"

namespace cqac {
namespace testing {

/// True when the case still exhibits the failure being minimized (lattice
/// divergence, oracle disagreement, metamorphic violation — the fuzzer
/// closes over whichever check fired).  The predicate must be
/// deterministic; the shrinker calls it repeatedly.
using FailurePredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkOptions {
  /// Predicate-call budget.  Each candidate costs one call; the greedy
  /// passes stop (keeping the best case so far) when it runs out.
  int max_evaluations = 400;
};

struct ShrinkResult {
  /// The smallest failing case found.  At worst the input itself.
  FuzzCase c;
  int evaluations = 0;
  bool budget_exhausted = false;
};

/// Greedy delta debugging: repeatedly tries to drop one view, one query
/// comparison, one view comparison, one query subgoal, or one view
/// subgoal, keeping any drop after which the case (a) is still
/// well-formed — safe query, safe views, nonempty bodies — and (b) still
/// fails.  Passes cycle until a full round removes nothing.  `c` must
/// fail `fails` on entry.
ShrinkResult ShrinkFailingCase(const FuzzCase& c, const FailurePredicate& fails,
                               const ShrinkOptions& options = {});

/// The shrunken case as a ready-to-paste corpus file / regression test in
/// the docs/SYNTAX.md rule syntax (`view <rule>.` / `query <rule>.`),
/// with `comment` lines up top describing the failure.  Identical to
/// SerializeCase; named separately because this is the artifact the
/// fuzzer writes next to a finding.
std::string RegressionText(const FuzzCase& c, const std::string& comment);

}  // namespace testing
}  // namespace cqac

#endif  // CQAC_TESTING_SHRINKER_H_
