#include "testing/mutators.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "workload/prand.h"

namespace cqac {
namespace testing {

namespace {

template <typename T>
void PortableShuffle(std::vector<T>* v, std::mt19937_64& rng) {
  for (size_t i = v->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(PortableBoundedDraw(rng, i));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

/// The comparison as `lhs op rhs` with op in {<, <=}, when it has such a
/// form.
std::optional<Comparison> AsUpperBound(const Comparison& c) {
  switch (c.op()) {
    case CompOp::kLt:
    case CompOp::kLe:
      return c;
    case CompOp::kGt:
    case CompOp::kGe:
      return c.Flipped();
    default:
      return std::nullopt;
  }
}

}  // namespace

const char* MutationEffectName(MutationEffect effect) {
  switch (effect) {
    case MutationEffect::kPreservesEverything:
      return "preserves-everything";
    case MutationEffect::kPreservesOutcome:
      return "preserves-outcome";
    case MutationEffect::kMayChange:
      return "may-change";
  }
  return "?";
}

bool MutationEffectHolds(MutationEffect effect, const RunSignature& original,
                         const RunSignature& mutant, std::string* why) {
  if (effect == MutationEffect::kMayChange) return true;
  if (original.outcome != mutant.outcome) {
    if (why != nullptr) {
      *why = "outcome changed:\n--- original\n" + original.ToString() +
             "\n--- mutant\n" + mutant.ToString();
    }
    return false;
  }
  if (effect == MutationEffect::kPreservesOutcome) return true;
  // kPreservesEverything: every invariant counter too.  The rewriting
  // text and failure wording are allowed to differ (renamed variables
  // appear in both).
  const bool counters_equal =
      original.canonical_databases == mutant.canonical_databases &&
      original.kept_canonical_databases == mutant.kept_canonical_databases &&
      original.v0_variants == mutant.v0_variants &&
      original.mcds_formed == mutant.mcds_formed &&
      original.mcds_kept_total == mutant.mcds_kept_total &&
      original.view_tuples_total == mutant.view_tuples_total &&
      original.phase2_checks == mutant.phase2_checks;
  if (!counters_equal && why != nullptr) {
    *why = "work counters changed:\n--- original\n" + original.ToString() +
           "\n--- mutant\n" + mutant.ToString();
  }
  return counters_equal;
}

std::optional<Mutation> RenameVariablesMutation(const FuzzCase& c,
                                                std::mt19937_64& rng) {
  static const char* kPrefixes[] = {"mq", "ren", "zz", "qv"};
  const char* prefix = kPrefixes[PortableBoundedDraw(rng, 4)];
  Mutation m;
  m.name = "rename-variables";
  m.effect = MutationEffect::kPreservesEverything;
  m.c.query = c.query.RenameVariables(prefix);
  for (const ConjunctiveQuery& v : c.views.views()) {
    m.c.views.Add(v.RenameVariables(prefix));
  }
  return m;
}

std::optional<Mutation> AddImpliedComparisonMutation(const FuzzCase& c,
                                                     std::mt19937_64& rng) {
  if (c.query.comparisons().empty()) return std::nullopt;
  // Transitive chains `a R b, b S c  ==>  a T c` through a shared middle
  // term, with T strict iff either link is.
  std::vector<Comparison> bounds;
  for (const Comparison& cmp : c.query.comparisons()) {
    std::optional<Comparison> upper = AsUpperBound(cmp);
    if (upper.has_value()) bounds.push_back(*upper);
  }
  std::vector<Comparison> candidates;
  for (const Comparison& ab : bounds) {
    for (const Comparison& bc : bounds) {
      if (!(ab.rhs() == bc.lhs())) continue;
      if (ab.lhs() == bc.rhs()) continue;  // would relate a term to itself
      const bool strict =
          ab.op() == CompOp::kLt || bc.op() == CompOp::kLt;
      candidates.emplace_back(ab.lhs(), strict ? CompOp::kLt : CompOp::kLe,
                              bc.rhs());
    }
  }
  Mutation m;
  m.name = "add-implied-comparison";
  m.effect = MutationEffect::kPreservesEverything;
  m.c = c;
  if (!candidates.empty()) {
    m.c.query.mutable_comparisons().push_back(candidates[PortableBoundedDraw(
        rng, static_cast<uint64_t>(candidates.size()))]);
  } else {
    // No chain available: a duplicate of an existing comparison is still
    // implied (trivially).
    const std::vector<Comparison>& comps = c.query.comparisons();
    m.c.query.mutable_comparisons().push_back(
        comps[PortableBoundedDraw(rng, static_cast<uint64_t>(comps.size()))]);
  }
  return m;
}

std::optional<Mutation> PermuteSubgoalsMutation(const FuzzCase& c,
                                                std::mt19937_64& rng) {
  if (c.query.body().size() < 2) return std::nullopt;
  Mutation m;
  m.name = "permute-subgoals";
  m.effect = MutationEffect::kPreservesOutcome;
  m.c = c;
  PortableShuffle(&m.c.query.mutable_body(), rng);
  return m;
}

std::optional<Mutation> PermuteViewsMutation(const FuzzCase& c,
                                             std::mt19937_64& rng) {
  if (c.views.size() < 2) return std::nullopt;
  Mutation m;
  m.name = "permute-views";
  m.effect = MutationEffect::kPreservesOutcome;
  std::vector<ConjunctiveQuery> views = c.views.views();
  PortableShuffle(&views, rng);
  m.c.query = c.query;
  m.c.views = ViewSet(std::move(views));
  return m;
}

std::optional<Mutation> DuplicateViewMutation(const FuzzCase& c,
                                              std::mt19937_64& rng) {
  if (c.views.empty()) return std::nullopt;
  const ConjunctiveQuery& victim = c.views.views()[PortableBoundedDraw(
      rng, static_cast<uint64_t>(c.views.size()))];
  // A fresh predicate name: must not collide with another view, the query
  // head, or any base relation (which would silently change semantics).
  auto name_taken = [&c](const std::string& name) {
    if (c.views.Find(name) != nullptr) return true;
    if (c.query.name() == name) return true;
    auto in_body = [&name](const ConjunctiveQuery& q) {
      for (const Atom& a : q.body()) {
        if (a.predicate() == name) return true;
      }
      return false;
    };
    if (in_body(c.query)) return true;
    for (const ConjunctiveQuery& v : c.views.views()) {
      if (in_body(v)) return true;
    }
    return false;
  };
  std::string name;
  for (int i = 2; name.empty(); ++i) {
    std::string candidate = victim.name() + "_dup" + std::to_string(i);
    if (!name_taken(candidate)) name = std::move(candidate);
  }
  ConjunctiveQuery dup = victim.RenameVariables("dv");
  Atom head(name, dup.head().args());
  dup = ConjunctiveQuery(std::move(head), dup.body(), dup.comparisons());
  Mutation m;
  m.name = "duplicate-view";
  m.effect = MutationEffect::kPreservesOutcome;
  m.c = c;
  m.c.views.Add(std::move(dup));
  return m;
}

namespace {

/// Flips one view comparison whose operator is in `from` to the paired
/// operator in `to` (same index).  Shared skeleton of Tighten/Relax.
std::optional<Mutation> FlipViewComparison(const FuzzCase& c,
                                           std::mt19937_64& rng,
                                           const std::vector<CompOp>& from,
                                           const std::vector<CompOp>& to,
                                           const std::string& name) {
  std::vector<std::pair<int, int>> sites;  // (view index, comparison index)
  for (int v = 0; v < c.views.size(); ++v) {
    const std::vector<Comparison>& comps = c.views.views()[v].comparisons();
    for (int i = 0; i < static_cast<int>(comps.size()); ++i) {
      if (std::find(from.begin(), from.end(), comps[i].op()) != from.end()) {
        sites.emplace_back(v, i);
      }
    }
  }
  if (sites.empty()) return std::nullopt;
  const auto [view_index, comp_index] =
      sites[PortableBoundedDraw(rng, static_cast<uint64_t>(sites.size()))];
  Mutation m;
  m.name = name;
  m.effect = MutationEffect::kMayChange;
  m.c.query = c.query;
  std::vector<ConjunctiveQuery> views = c.views.views();
  Comparison& target = views[view_index].mutable_comparisons()[comp_index];
  const size_t op_index = static_cast<size_t>(
      std::find(from.begin(), from.end(), target.op()) - from.begin());
  target = Comparison(target.lhs(), to[op_index], target.rhs());
  m.c.views = ViewSet(std::move(views));
  return m;
}

}  // namespace

std::optional<Mutation> TightenViewComparisonMutation(const FuzzCase& c,
                                                      std::mt19937_64& rng) {
  return FlipViewComparison(c, rng, {CompOp::kLe, CompOp::kGe},
                            {CompOp::kLt, CompOp::kGt},
                            "tighten-view-comparison");
}

std::optional<Mutation> RelaxViewComparisonMutation(const FuzzCase& c,
                                                    std::mt19937_64& rng) {
  return FlipViewComparison(c, rng, {CompOp::kLt, CompOp::kGt},
                            {CompOp::kLe, CompOp::kGe},
                            "relax-view-comparison");
}

std::optional<Mutation> ApplyRandomMutation(const FuzzCase& c,
                                            std::mt19937_64& rng) {
  using Mutator = std::optional<Mutation> (*)(const FuzzCase&,
                                              std::mt19937_64&);
  std::vector<Mutator> mutators = {
      &RenameVariablesMutation,       &AddImpliedComparisonMutation,
      &PermuteSubgoalsMutation,       &PermuteViewsMutation,
      &DuplicateViewMutation,         &TightenViewComparisonMutation,
      &RelaxViewComparisonMutation,
  };
  PortableShuffle(&mutators, rng);
  for (const Mutator mutator : mutators) {
    std::optional<Mutation> m = mutator(c, rng);
    if (m.has_value()) return m;
  }
  return std::nullopt;
}

}  // namespace testing
}  // namespace cqac
