#include "testing/oracle.h"

#include <algorithm>
#include <map>
#include <random>
#include <sstream>

#include "ast/comparison.h"
#include "constraints/orders.h"
#include "engine/canonical.h"
#include "engine/evaluate.h"
#include "rewriting/expansion.h"
#include "workload/prand.h"

namespace cqac {
namespace testing {

namespace {

std::string TupleToString(const Tuple& t) {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out << ",";
    out << t[i];
  }
  out << ")";
  return out.str();
}

/// The naive evaluator: recursive backtracking over the body with a
/// map-based binding, comparisons checked once all subgoals are matched.
/// `target == nullptr` collects every head tuple into `out`; otherwise
/// the search stops as soon as the target tuple is produced.
class NaiveEvaluator {
 public:
  NaiveEvaluator(const ConjunctiveQuery& q, const Database& db)
      : q_(q), db_(db) {}

  bool ComputesTuple(const Tuple& target) {
    target_ = &target;
    out_ = nullptr;
    found_ = false;
    Search(0);
    return found_;
  }

  void EvaluateAll(Relation* out) {
    target_ = nullptr;
    out_ = out;
    Search(0);
  }

 private:
  Rational ValueOf(const Term& t) const {
    return t.IsConstant() ? t.value() : binding_.at(t.name());
  }

  /// Binds `t` to `v` (recording new bindings in `undo`); false on clash.
  bool Bind(const Term& t, const Rational& v, std::vector<std::string>* undo) {
    if (t.IsConstant()) return t.value() == v;
    const auto it = binding_.find(t.name());
    if (it != binding_.end()) return it->second == v;
    binding_.emplace(t.name(), v);
    undo->push_back(t.name());
    return true;
  }

  /// Returns false to abort the whole search (target found).
  bool Search(size_t depth) {
    if (depth == q_.body().size()) {
      for (const Comparison& c : q_.comparisons()) {
        if (!EvalCompOp(ValueOf(c.lhs()), c.op(), ValueOf(c.rhs()))) {
          return true;
        }
      }
      Tuple head;
      head.reserve(q_.head().args().size());
      for (const Term& t : q_.head().args()) head.push_back(ValueOf(t));
      if (target_ != nullptr) {
        if (head == *target_) {
          found_ = true;
          return false;
        }
        return true;
      }
      out_->Insert(head);
      return true;
    }
    const Atom& subgoal = q_.body()[depth];
    for (const Tuple& row : db_.Get(subgoal.predicate()).tuples()) {
      if (static_cast<int>(row.size()) != subgoal.arity()) continue;
      std::vector<std::string> undo;
      bool matched = true;
      for (size_t i = 0; i < row.size(); ++i) {
        if (!Bind(subgoal.args()[i], row[i], &undo)) {
          matched = false;
          break;
        }
      }
      const bool keep_going = !matched || Search(depth + 1);
      for (const std::string& name : undo) binding_.erase(name);
      if (!keep_going) return false;
    }
    return true;
  }

  const ConjunctiveQuery& q_;
  const Database& db_;
  const Tuple* target_ = nullptr;
  Relation* out_ = nullptr;
  bool found_ = false;
  std::map<std::string, Rational> binding_;
};

bool NaiveComputesTuple(const ConjunctiveQuery& q, const Database& db,
                        const Tuple& target) {
  if (static_cast<int>(target.size()) != q.head().arity()) return false;
  return NaiveEvaluator(q, db).ComputesTuple(target);
}

bool ComparisonsHold(const std::vector<Comparison>& comparisons,
                     const std::map<std::string, Rational>& assignment) {
  auto value = [&assignment](const Term& t) {
    return t.IsConstant() ? t.value() : assignment.at(t.name());
  };
  for (const Comparison& c : comparisons) {
    if (!EvalCompOp(value(c.lhs()), c.op(), value(c.rhs()))) return false;
  }
  return true;
}

void AddConstants(const std::vector<Rational>& extra,
                  std::vector<Rational>* into) {
  for (const Rational& c : extra) {
    if (std::find(into->begin(), into->end(), c) == into->end()) {
      into->push_back(c);
    }
  }
}

/// Constants of query, views, and (optionally) the rewriting and its
/// expansions — the order-enumeration constant set of the canonical test.
std::vector<Rational> ContainmentConstants(const FuzzCase& c,
                                           const UnionQuery* rewriting) {
  std::vector<Rational> constants = c.query.Constants();
  for (const ConjunctiveQuery& v : c.views.views()) {
    AddConstants(v.Constants(), &constants);
  }
  if (rewriting != nullptr) {
    for (const ConjunctiveQuery& d : rewriting->disjuncts()) {
      AddConstants(d.Constants(), &constants);
    }
  }
  std::sort(constants.begin(), constants.end());
  return constants;
}

/// All (predicate, arity) pairs of the base schema: the bodies of the
/// query and of every view.
std::vector<std::pair<std::string, int>> BaseSchema(const FuzzCase& c) {
  std::vector<std::pair<std::string, int>> schema;
  auto add = [&schema](const ConjunctiveQuery& q) {
    for (const Atom& a : q.body()) {
      const std::pair<std::string, int> key(a.predicate(), a.arity());
      if (std::find(schema.begin(), schema.end(), key) == schema.end()) {
        schema.push_back(key);
      }
    }
  };
  add(c.query);
  for (const ConjunctiveQuery& v : c.views.views()) add(v);
  std::sort(schema.begin(), schema.end());
  return schema;
}

/// One containment direction `lhs ⊑ rhs-union` by canonical databases:
/// for every total order of lhs's variables and `constants` whose witness
/// satisfies lhs's comparisons, some disjunct of `rhs` must compute lhs's
/// frozen head on the frozen database.
void CheckContainmentDirection(const ConjunctiveQuery& lhs,
                               const std::vector<const ConjunctiveQuery*>& rhs,
                               const std::vector<Rational>& constants,
                               const std::string& direction,
                               const OracleOptions& options,
                               OracleVerdict* verdict) {
  const std::vector<std::string> variables = lhs.AllVariables();
  if (static_cast<int>(variables.size() + constants.size()) >
      options.max_order_terms) {
    verdict->checked = false;
    return;
  }
  bool budget_hit = false;
  ForEachTotalOrder(variables, constants, [&](const TotalOrder& order) {
    if (verdict->orders_checked >= options.max_orders) {
      budget_hit = true;
      return false;
    }
    ++verdict->orders_checked;
    const std::map<std::string, Rational> assignment = order.ToAssignment();
    if (!ComparisonsHold(lhs.comparisons(), assignment)) return true;
    const CanonicalDatabase frozen = FreezeQuery(lhs, order);
    for (const ConjunctiveQuery* q : rhs) {
      if (NaiveComputesTuple(*q, frozen.db, frozen.frozen_head)) return true;
    }
    verdict->ok = false;
    verdict->failure = direction + " fails on canonical database [" +
                       order.ToString() + "]: head " +
                       TupleToString(frozen.frozen_head) +
                       " is not computed on\n" + frozen.db.ToString();
    return false;
  });
  if (budget_hit) verdict->checked = false;
}

/// Diffs the two sides (and both evaluators) on one concrete database.
bool DiffOnDatabase(const FuzzCase& c, const UnionQuery& expansions,
                    const Database& db, OracleVerdict* verdict) {
  ++verdict->databases_checked;
  Relation naive_query;
  NaiveEvaluator(c.query, db).EvaluateAll(&naive_query);
  Relation naive_union;
  for (const ConjunctiveQuery& d : expansions.disjuncts()) {
    NaiveEvaluator(d, db).EvaluateAll(&naive_union);
  }
  if (naive_query != naive_union) {
    verdict->ok = false;
    verdict->failure = "query and expansion union disagree on database\n" +
                       db.ToString() + "query: " + naive_query.ToString() +
                       "\nexpansions: " + naive_union.ToString();
    return false;
  }
  // Cross-check the production evaluator against the naive one, per side.
  const Relation fast_query = Evaluate(c.query, db);
  if (fast_query != naive_query) {
    verdict->ok = false;
    verdict->failure =
        "production and naive evaluators disagree on the query over\n" +
        db.ToString() + "production: " + fast_query.ToString() +
        "\nnaive: " + naive_query.ToString();
    return false;
  }
  const Relation fast_union = Evaluate(expansions, db);
  if (fast_union != naive_union) {
    verdict->ok = false;
    verdict->failure =
        "production and naive evaluators disagree on the expansions over\n" +
        db.ToString() + "production: " + fast_union.ToString() +
        "\nnaive: " + naive_union.ToString();
    return false;
  }
  return true;
}

}  // namespace

void OracleVerdict::Merge(const OracleVerdict& other) {
  checked = checked && other.checked;
  orders_checked += other.orders_checked;
  databases_checked += other.databases_checked;
  if (ok && !other.ok) {
    ok = false;
    failure = other.failure;
  }
}

std::vector<Rational> OracleValuePool(const FuzzCase& c,
                                      const UnionQuery* rewriting) {
  std::vector<Rational> constants = ContainmentConstants(c, rewriting);
  if (constants.empty()) {
    return {Rational(0), Rational(1), Rational(2)};
  }
  // Density witnesses: one value strictly between each adjacent pair and
  // one beyond each extreme, so comparisons can be satisfied strictly or
  // violated on either side of every constant.
  std::vector<Rational> pool;
  const Rational half(1, 2);
  pool.push_back(constants.front() - Rational(1));
  for (size_t i = 0; i < constants.size(); ++i) {
    pool.push_back(constants[i]);
    if (i + 1 < constants.size()) {
      pool.push_back((constants[i] + constants[i + 1]) * half);
    }
  }
  pool.push_back(constants.back() + Rational(1));
  return pool;
}

Relation NaiveEvaluate(const ConjunctiveQuery& q, const Database& db) {
  Relation out;
  NaiveEvaluator(q, db).EvaluateAll(&out);
  return out;
}

Relation NaiveEvaluate(const UnionQuery& q, const Database& db) {
  Relation out;
  for (const ConjunctiveQuery& d : q.disjuncts()) {
    NaiveEvaluator(d, db).EvaluateAll(&out);
  }
  return out;
}

OracleVerdict CheckEquivalenceByCanonicalDatabases(
    const FuzzCase& c, const UnionQuery& rewriting,
    const OracleOptions& options) {
  OracleVerdict verdict;
  const UnionQuery expansions = Expand(rewriting, c.views);
  for (const ConjunctiveQuery& d : expansions.disjuncts()) {
    if (d.head().arity() != c.query.head().arity()) {
      verdict.ok = false;
      verdict.failure = "expansion head arity mismatch: " + d.ToString();
      return verdict;
    }
  }
  const std::vector<Rational> constants =
      ContainmentConstants(c, &rewriting);

  // Q ⊑ ∪ expansions: some disjunct covers each canonical database of Q.
  std::vector<const ConjunctiveQuery*> rhs;
  for (const ConjunctiveQuery& d : expansions.disjuncts()) rhs.push_back(&d);
  CheckContainmentDirection(c.query, rhs, constants,
                            "Q ⊑ ∪expansions", options, &verdict);
  if (!verdict.ok) return verdict;

  // Each expansion ⊑ Q.  Disjuncts are simplified first when the options
  // say so (fewer variables to order); an unsatisfiable disjunct computes
  // nothing and is vacuously contained.
  const std::vector<const ConjunctiveQuery*> query_only = {&c.query};
  for (const ConjunctiveQuery& d : expansions.disjuncts()) {
    ConjunctiveQuery lhs = d;
    if (options.simplify_expansions) {
      std::optional<ConjunctiveQuery> simplified = SimplifyQuery(d);
      if (!simplified.has_value()) continue;
      lhs = std::move(*simplified);
    }
    CheckContainmentDirection(lhs, query_only, constants,
                              "expansion ⊑ Q", options, &verdict);
    if (!verdict.ok) {
      verdict.failure += "\nexpansion: " + lhs.ToString();
      return verdict;
    }
  }
  return verdict;
}

OracleVerdict CheckEquivalenceByRandomDatabases(
    const FuzzCase& c, const UnionQuery& rewriting,
    const OracleOptions& options) {
  OracleVerdict verdict;
  const UnionQuery expansions = Expand(rewriting, c.views);
  const std::vector<Rational> pool = OracleValuePool(c, &rewriting);
  const std::vector<std::pair<std::string, int>> schema = BaseSchema(c);
  std::mt19937_64 rng(options.seed);
  for (int i = 0; i < options.random_databases; ++i) {
    Database db;
    for (const auto& [predicate, arity] : schema) {
      const int rows = PortableUniformInt(rng, 0, options.random_max_rows);
      for (int r = 0; r < rows; ++r) {
        Tuple row;
        row.reserve(arity);
        for (int a = 0; a < arity; ++a) {
          row.push_back(pool[PortableUniformInt(
              rng, 0, static_cast<int>(pool.size()) - 1)]);
        }
        db.Insert(predicate, std::move(row));
      }
    }
    if (!DiffOnDatabase(c, expansions, db, &verdict)) return verdict;
  }
  return verdict;
}

OracleVerdict CheckEquivalenceByExhaustiveDatabases(
    const FuzzCase& c, const UnionQuery& rewriting,
    const OracleOptions& options) {
  OracleVerdict verdict;
  if (options.exhaustive_max_facts <= 0) return verdict;
  const UnionQuery expansions = Expand(rewriting, c.views);
  const std::vector<Rational> pool = OracleValuePool(c, &rewriting);
  const std::vector<std::pair<std::string, int>> schema = BaseSchema(c);

  // The universe of facts: every predicate applied to every tuple of pool
  // values.
  struct Fact {
    const std::string* predicate;
    Tuple row;
  };
  std::vector<Fact> universe;
  for (const auto& [predicate, arity] : schema) {
    std::vector<int> digits(arity, 0);
    for (;;) {
      Tuple row;
      row.reserve(arity);
      for (const int d : digits) row.push_back(pool[d]);
      universe.push_back(Fact{&predicate, std::move(row)});
      int pos = arity - 1;
      while (pos >= 0 &&
             ++digits[pos] == static_cast<int>(pool.size())) {
        digits[pos--] = 0;
      }
      if (pos < 0) break;
    }
  }

  // Every subset of the universe with at most `exhaustive_max_facts`
  // members, by choosing strictly increasing fact indices.
  Database db;
  std::vector<int> chosen;
  bool budget_hit = false;
  auto enumerate = [&](auto&& self, size_t first) -> bool {
    if (verdict.databases_checked >= options.max_exhaustive_databases) {
      budget_hit = true;
      return false;
    }
    if (!DiffOnDatabase(c, expansions, db, &verdict)) return false;
    if (static_cast<int>(chosen.size()) >= options.exhaustive_max_facts) {
      return true;
    }
    for (size_t i = first; i < universe.size(); ++i) {
      Database saved = db;
      db.Insert(*universe[i].predicate, universe[i].row);
      chosen.push_back(static_cast<int>(i));
      const bool keep_going = self(self, i + 1);
      chosen.pop_back();
      db = std::move(saved);
      if (!keep_going) return false;
    }
    return true;
  };
  enumerate(enumerate, 0);
  if (budget_hit) verdict.checked = false;
  return verdict;
}

OracleVerdict CheckRewritingWithOracle(const FuzzCase& c,
                                       const UnionQuery& rewriting,
                                       const OracleOptions& options) {
  OracleVerdict verdict = CheckEquivalenceByCanonicalDatabases(
      c, rewriting, options);
  if (!verdict.ok) return verdict;
  verdict.Merge(CheckEquivalenceByRandomDatabases(c, rewriting, options));
  if (!verdict.ok) return verdict;
  verdict.Merge(CheckEquivalenceByExhaustiveDatabases(c, rewriting, options));
  return verdict;
}

}  // namespace testing
}  // namespace cqac
