#ifndef CQAC_TESTING_MUTATORS_H_
#define CQAC_TESTING_MUTATORS_H_

#include <optional>
#include <random>
#include <string>

#include "testing/corpus.h"
#include "testing/differential.h"

namespace cqac {
namespace testing {

/// What a mutation is allowed to change about the rewriter's answer.
/// Each mutator declares its effect up front; the fuzzer runs the mutant
/// and asserts the declared relation against the original's result.  A
/// violated relation is a bug in the rewriter (or in the declared
/// metamorphic theory — either way, a finding).
enum class MutationEffect {
  /// The outcome and every invariant work counter must be unchanged
  /// (rewriting text and failure wording may differ — e.g. renamed
  /// variables appear in both).  Holds for mutations that preserve the
  /// input up to details the algorithm is insensitive to: consistent
  /// variable renaming, adding a comparison already implied by the query.
  kPreservesEverything,

  /// The outcome must be unchanged; counters may shift.  Holds for
  /// mutations that preserve the *semantics* of the problem but not its
  /// syntactic presentation: permuting subgoals or views (enumeration
  /// order changes, and with it where a failing Phase-2 check
  /// short-circuits), duplicating a view under a fresh name (a rewriting
  /// exists with the duplicate iff one exists without it).
  kPreservesOutcome,

  /// Anything can happen; the mutant is just a new input.  Its value is
  /// diversification — the full lattice + oracle still run on it.  Holds
  /// for mutations that genuinely change the problem, e.g. tightening or
  /// relaxing a view comparison between strict and non-strict.
  kMayChange,
};

const char* MutationEffectName(MutationEffect effect);

/// A mutated case plus its declared effect.
struct Mutation {
  std::string name;  // e.g. "rename-variables"
  MutationEffect effect = MutationEffect::kMayChange;
  FuzzCase c;
};

/// Checks the declared effect against the original's and the mutant's
/// invariant signatures.  On violation returns false and describes the
/// difference in `*why`.
bool MutationEffectHolds(MutationEffect effect, const RunSignature& original,
                         const RunSignature& mutant, std::string* why);

/// The individual mutators.  Each returns nullopt when the case lacks the
/// material it needs (e.g. no comparisons to chain).  All randomness goes
/// through workload/prand.h draws on `rng`, so mutant streams are
/// reproducible across platforms like everything else in the fuzzer.

/// Renames every variable of the query and of each view to a fresh
/// consistent scheme.  kPreservesEverything.
std::optional<Mutation> RenameVariablesMutation(const FuzzCase& c,
                                                std::mt19937_64& rng);

/// Adds a comparison already implied by the query's: a transitive chain
/// through a shared term when one exists, otherwise a duplicate of an
/// existing comparison.  kPreservesEverything.
std::optional<Mutation> AddImpliedComparisonMutation(const FuzzCase& c,
                                                     std::mt19937_64& rng);

/// Randomly permutes the query's ordinary subgoals.  kPreservesOutcome.
std::optional<Mutation> PermuteSubgoalsMutation(const FuzzCase& c,
                                                std::mt19937_64& rng);

/// Randomly permutes the view definitions.  kPreservesOutcome.
std::optional<Mutation> PermuteViewsMutation(const FuzzCase& c,
                                             std::mt19937_64& rng);

/// Duplicates one view under a fresh predicate name (variables renamed
/// apart).  kPreservesOutcome.
std::optional<Mutation> DuplicateViewMutation(const FuzzCase& c,
                                              std::mt19937_64& rng);

/// Makes one non-strict view comparison strict (`<=` to `<`, `>=` to
/// `>`).  kMayChange.
std::optional<Mutation> TightenViewComparisonMutation(const FuzzCase& c,
                                                      std::mt19937_64& rng);

/// Makes one strict view comparison non-strict (`<` to `<=`, `>` to
/// `>=`).  kMayChange.
std::optional<Mutation> RelaxViewComparisonMutation(const FuzzCase& c,
                                                    std::mt19937_64& rng);

/// Picks a random applicable mutator.  Returns nullopt only when no
/// mutator applies (e.g. a single-subgoal, comparison-free, view-free
/// case).
std::optional<Mutation> ApplyRandomMutation(const FuzzCase& c,
                                            std::mt19937_64& rng);

}  // namespace testing
}  // namespace cqac

#endif  // CQAC_TESTING_MUTATORS_H_
