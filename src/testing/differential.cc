#include "testing/differential.h"

#include <sstream>

#include "catalog/view_catalog.h"
#include "containment/homomorphism.h"
#include "engine/coded_eval.h"
#include "runtime/memo_cache.h"

namespace cqac {
namespace testing {

std::string LatticeConfig::Name() const {
  std::ostringstream out;
  out << "jobs=" << jobs;
  if (phase1_dedup) out << " dedup";
  if (memo_cache) out << " memo";
  if (legacy_orders) out << " legacy-orders";
  if (legacy_homomorphism) out << " legacy-homomorphism";
  if (row_engine) out << " row-engine";
  if (verify) out << " verify";
  if (use_catalog) out << " catalog";
  if (force_tier >= 0) out << " tier" << force_tier;
  return out.str();
}

RewriteOptions LatticeConfig::ToOptions() const {
  RewriteOptions options;
  options.jobs = jobs;
  options.phase1_dedup = phase1_dedup;
  options.verify = verify;
  options.force_tier = force_tier;
  return options;
}

std::vector<LatticeConfig> FullConfigLattice() {
  std::vector<LatticeConfig> lattice;
  // Serial baseline first: every other point diffs against it.
  lattice.push_back(LatticeConfig{});
  for (const int jobs : {1, 4}) {
    for (const bool dedup : {true, false}) {
      LatticeConfig c;
      c.jobs = jobs;
      c.phase1_dedup = dedup;
      if (jobs == 1 && dedup) continue;  // the baseline again
      lattice.push_back(c);
    }
    // Engine toggles, one at a time, under both schedulers.
    LatticeConfig memo;
    memo.jobs = jobs;
    memo.memo_cache = true;
    lattice.push_back(memo);
    LatticeConfig orders;
    orders.jobs = jobs;
    orders.legacy_orders = true;
    lattice.push_back(orders);
    LatticeConfig hom;
    hom.jobs = jobs;
    hom.legacy_homomorphism = true;
    lattice.push_back(hom);
    // The columnar engine is the production default, so the plain
    // jobs=1 / jobs=4 points above already exercise columnar and
    // columnar_parallel; these force the retained row engine under the
    // same schedulers, pitting the two engines per input.
    LatticeConfig row;
    row.jobs = jobs;
    row.row_engine = true;
    lattice.push_back(row);
  }
  LatticeConfig both_legacy;  // the two legacy engines interacting
  both_legacy.legacy_orders = true;
  both_legacy.legacy_homomorphism = true;
  lattice.push_back(both_legacy);
  LatticeConfig verify;  // semantic anchor
  verify.verify = true;
  lattice.push_back(verify);
  LatticeConfig catalog;  // catalog-served, replayed from the semantic cache
  catalog.use_catalog = true;
  lattice.push_back(catalog);
  LatticeConfig catalog_parallel;  // catalog plan under the parallel driver
  catalog_parallel.use_catalog = true;
  catalog_parallel.jobs = 4;
  lattice.push_back(catalog_parallel);
  // Tier lattice (rewriting/structure.h): forced-general anchor plus each
  // fast tier, serial and (for the grid cache, whose sharing is
  // schedule-dependent) parallel.  Ineligible inputs fall back to the
  // general path, so every point is sound on every case.
  LatticeConfig tier0;
  tier0.force_tier = 0;
  lattice.push_back(tier0);
  LatticeConfig tier1;
  tier1.force_tier = 1;
  lattice.push_back(tier1);
  LatticeConfig tier1_parallel;
  tier1_parallel.force_tier = 1;
  tier1_parallel.jobs = 4;
  lattice.push_back(tier1_parallel);
  LatticeConfig tier2;
  tier2.force_tier = 2;
  lattice.push_back(tier2);
  return lattice;
}

std::vector<LatticeConfig> SmokeConfigLattice() {
  std::vector<LatticeConfig> lattice;
  lattice.push_back(LatticeConfig{});  // serial baseline
  LatticeConfig parallel;
  parallel.jobs = 4;
  parallel.memo_cache = true;
  lattice.push_back(parallel);
  LatticeConfig no_dedup;
  no_dedup.phase1_dedup = false;
  lattice.push_back(no_dedup);
  LatticeConfig legacy;
  legacy.legacy_orders = true;
  legacy.legacy_homomorphism = true;
  lattice.push_back(legacy);
  LatticeConfig row;  // retained row engine vs the columnar baseline
  row.row_engine = true;
  lattice.push_back(row);
  LatticeConfig verify;
  verify.verify = true;
  lattice.push_back(verify);
  LatticeConfig catalog;
  catalog.use_catalog = true;
  lattice.push_back(catalog);
  LatticeConfig tier1;  // grid-cache tier vs the auto-routed baseline
  tier1.force_tier = 1;
  lattice.push_back(tier1);
  LatticeConfig tier2;  // join-tree tier (general fallback when cyclic)
  tier2.force_tier = 2;
  lattice.push_back(tier2);
  return lattice;
}

bool RunSignature::operator==(const RunSignature& other) const {
  return outcome == other.outcome && rewriting == other.rewriting &&
         failure_reason == other.failure_reason &&
         canonical_databases == other.canonical_databases &&
         kept_canonical_databases == other.kept_canonical_databases &&
         v0_variants == other.v0_variants &&
         mcds_formed == other.mcds_formed &&
         mcds_kept_total == other.mcds_kept_total &&
         view_tuples_total == other.view_tuples_total &&
         phase2_checks == other.phase2_checks;
}

std::string RunSignature::ToString() const {
  std::ostringstream out;
  out << "outcome=";
  switch (outcome) {
    case RewriteOutcome::kRewritingFound:
      out << "found";
      break;
    case RewriteOutcome::kNoRewriting:
      out << "none";
      break;
    case RewriteOutcome::kAborted:
      out << "aborted";
      break;
  }
  out << "\nrewriting=" << rewriting;
  out << "\nfailure_reason=" << failure_reason;
  out << "\ncanonical_databases=" << canonical_databases;
  out << "\nkept_canonical_databases=" << kept_canonical_databases;
  out << "\nv0_variants=" << v0_variants;
  out << "\nmcds_formed=" << mcds_formed;
  out << "\nmcds_kept_total=" << mcds_kept_total;
  out << "\nview_tuples_total=" << view_tuples_total;
  out << "\nphase2_checks=" << phase2_checks;
  return out.str();
}

RunSignature SignatureOf(const RewriteResult& result) {
  RunSignature sig;
  sig.outcome = result.outcome;
  if (result.outcome == RewriteOutcome::kRewritingFound) {
    sig.rewriting = result.rewriting.ToString();
  }
  sig.failure_reason = result.failure_reason;
  sig.canonical_databases = result.stats.canonical_databases;
  sig.kept_canonical_databases = result.stats.kept_canonical_databases;
  sig.v0_variants = result.stats.v0_variants;
  sig.mcds_formed = result.stats.mcds_formed;
  sig.mcds_kept_total = result.stats.mcds_kept_total;
  sig.view_tuples_total = result.stats.view_tuples_total;
  sig.phase2_checks = result.stats.phase2_checks;
  return sig;
}

ScopedEngineSelection::ScopedEngineSelection(const LatticeConfig& config)
    : saved_orders_(internal::SatisfyingOrderFallbackForcedForTest()),
      saved_homomorphism_(internal::LegacyContainmentMappingForcedForTest()),
      saved_row_engine_(internal::RowEngineForced()) {
  internal::ForceSatisfyingOrderFallbackForTest(config.legacy_orders);
  internal::ForceLegacyContainmentMappingForTest(config.legacy_homomorphism);
  internal::ForceRowEngineForTest(config.row_engine);
}

ScopedEngineSelection::~ScopedEngineSelection() {
  internal::ForceSatisfyingOrderFallbackForTest(saved_orders_);
  internal::ForceLegacyContainmentMappingForTest(saved_homomorphism_);
  internal::ForceRowEngineForTest(saved_row_engine_);
}

RewriteResult RunWithConfig(const FuzzCase& c, const LatticeConfig& config) {
  ScopedEngineSelection selection(config);
  if (config.use_catalog) {
    // Cold run populates the caches, warm run replays from the semantic
    // cache; returning the warm result makes the lattice diff prove the
    // replay is byte-identical to a fresh run.
    ViewCatalog catalog(c.views);
    (void)catalog.Rewrite(c.query, config.ToOptions());
    return catalog.Rewrite(c.query, config.ToOptions());
  }
  MemoCache memo(/*capacity=*/1 << 14, /*num_shards=*/4);
  EquivalentRewriter rewriter(c.query, c.views, config.ToOptions(),
                              config.memo_cache ? &memo : nullptr);
  return rewriter.Run();
}

DifferentialReport RunConfigLattice(
    const FuzzCase& c, const std::vector<LatticeConfig>& lattice) {
  DifferentialReport report;
  for (size_t i = 0; i < lattice.size(); ++i) {
    const LatticeConfig& config = lattice[i];
    RewriteResult result = RunWithConfig(c, config);
    if (config.verify && result.outcome == RewriteOutcome::kRewritingFound &&
        !result.verified) {
      report.ok = false;
      report.divergent_config = config.Name();
      report.failure =
          "verify-enabled config found a rewriting that failed its own "
          "verification:\n" +
          result.rewriting.ToString();
      return report;
    }
    const RunSignature sig = SignatureOf(result);
    if (i == 0) {
      report.baseline = sig;
      report.baseline_result = std::move(result);
      continue;
    }
    if (sig != report.baseline) {
      report.ok = false;
      report.divergent_config = config.Name();
      report.failure = "signature diverges from serial baseline\n--- baseline\n" +
                       report.baseline.ToString() + "\n--- " + config.Name() +
                       "\n" + sig.ToString();
      return report;
    }
  }
  return report;
}

}  // namespace testing
}  // namespace cqac
