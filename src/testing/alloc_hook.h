#ifndef CQAC_TESTING_ALLOC_HOOK_H_
#define CQAC_TESTING_ALLOC_HOOK_H_

/// A heap-allocation counter for perf gates and bench telemetry.
///
/// Including this header REPLACES the program's global operator new /
/// operator delete with malloc/free-backed versions that bump an atomic
/// counter on every allocation.  Because replacement operators must be
/// defined exactly once per program, include this from exactly one
/// translation unit per binary — in practice the bench or test main TU
/// (bench_common.h pulls it into every bench binary; alloc_gate_test.cc
/// into the gate).  It must never be included from a TU that is compiled
/// into a library.
///
/// Under sanitizer builds (-DCQAC_SANITIZE=...) the sanitizer runtime
/// owns the allocator and interposing would break its bookkeeping, so
/// the replacement compiles out and AllocCountingAvailable() reports
/// false; consumers skip their assertions.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace cqac {
namespace testing {

namespace alloc_internal {
inline std::atomic<int64_t> g_allocations{0};
}  // namespace alloc_internal

/// True when the counting allocator is live in this binary.
inline bool AllocCountingAvailable() {
#ifdef CQAC_SANITIZER_BUILD
  return false;
#else
  return true;
#endif
}

/// Heap allocations observed so far (monotone; zero when unavailable).
inline int64_t AllocCount() {
  return alloc_internal::g_allocations.load(std::memory_order_relaxed);
}

/// Allocations since construction — wrap the region under test.
class AllocCounterScope {
 public:
  AllocCounterScope() : start_(AllocCount()) {}
  int64_t delta() const { return AllocCount() - start_; }

 private:
  int64_t start_;
};

}  // namespace testing
}  // namespace cqac

#ifndef CQAC_SANITIZER_BUILD

// GCC flags free() inside a replaced operator delete as a mismatched
// pair; malloc-backed replacement news make it exactly right.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  cqac::testing::alloc_internal::g_allocations.fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  cqac::testing::alloc_internal::g_allocations.fetch_add(
      1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

#endif  // CQAC_SANITIZER_BUILD

#endif  // CQAC_TESTING_ALLOC_HOOK_H_
