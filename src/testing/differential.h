#ifndef CQAC_TESTING_DIFFERENTIAL_H_
#define CQAC_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rewriting/equiv_rewriter.h"
#include "testing/corpus.h"

namespace cqac {
namespace testing {

/// One point of the configuration lattice: a choice of scheduler,
/// memoization, enumeration engine, and mapping engine.  Every point must
/// produce the same answer; the differential driver proves it per input.
struct LatticeConfig {
  /// RewriteOptions::jobs — 1 is the classic serial loop, anything else
  /// the work-stealing parallel driver.
  int jobs = 1;

  /// RewriteOptions::phase1_dedup — the Phase-1 fingerprint memo.
  bool phase1_dedup = true;

  /// Share a Phase-2 MemoCache across the run (the batch-service cache).
  bool memo_cache = false;

  /// Route ForEachSatisfyingOrderPruned through the legacy
  /// enumerate-then-filter reference (internal::ForceSatisfyingOrderFallbackForTest).
  bool legacy_orders = false;

  /// Route ForEachContainmentMapping through the legacy backtracking
  /// search (internal::ForceLegacyContainmentMappingForTest).
  bool legacy_homomorphism = false;

  /// Route canonical-database evaluation through the retained row engine
  /// (internal::ForceRowEngineForTest) instead of the coded columnar
  /// engine that is the production default.  The default points ARE the
  /// lattice's columnar / columnar_parallel coverage; these points supply
  /// the row side of the diff.
  bool row_engine = false;

  /// RewriteOptions::verify — found rewritings are independently
  /// re-checked; the driver requires verified == true whenever this is on.
  bool verify = false;

  /// Serve the case through a freshly built ViewCatalog
  /// (catalog/view_catalog.h), running it twice so the second run replays
  /// from the semantic cache — the signature diffed against the baseline
  /// is the warm one, proving cached results are byte-identical.
  bool use_catalog = false;

  /// RewriteOptions::force_tier — pins the structural execution tier
  /// (rewriting/structure.h): -1 = auto routing, 0/1/2 forces that tier
  /// when the input is eligible (else general-path fallback).  The tier
  /// lattice points prove every tier's signature is byte-identical to the
  /// forced-general baseline.
  int force_tier = -1;

  /// E.g. "jobs=4 dedup memo legacy-orders".
  std::string Name() const;

  /// The RewriteOptions this point runs under.
  RewriteOptions ToOptions() const;
};

/// The full lattice the fuzzer sweeps: every combination the acceptance
/// criteria name — serial vs parallel, Phase-1 memo on/off, Phase-2 memo
/// cache on/off, pruned vs legacy order enumeration, compiled vs legacy
/// containment mapping — plus one verify-enabled point as a semantic
/// anchor.  (Not the 2^6 cube: engine toggles are varied one at a time
/// against both schedulers, which still covers every pairwise interaction
/// the engines can have with the drivers.)
std::vector<LatticeConfig> FullConfigLattice();

/// The cheap subset for time-boxed smoke runs and corpus replay: serial
/// baseline, parallel, no-dedup, legacy engines, verify.
std::vector<LatticeConfig> SmokeConfigLattice();

/// The configuration-invariant projection of a RewriteResult.  Fields
/// excluded on purpose: stats.phase2_orders (legitimately drops when a
/// memo cache serves a verdict), stats.phase1_memo_hits/misses (the very
/// thing phase1_dedup toggles), and trace (explain-only).  Everything
/// here must be byte-identical across the lattice.
struct RunSignature {
  RewriteOutcome outcome = RewriteOutcome::kNoRewriting;
  std::string rewriting;  // UnionQuery::ToString(), "" when not found
  std::string failure_reason;
  int64_t canonical_databases = 0;
  int64_t kept_canonical_databases = 0;
  int64_t v0_variants = 0;
  int64_t mcds_formed = 0;
  int64_t mcds_kept_total = 0;
  int64_t view_tuples_total = 0;
  int64_t phase2_checks = 0;

  bool operator==(const RunSignature& other) const;
  bool operator!=(const RunSignature& other) const {
    return !(*this == other);
  }

  /// Multi-line rendering for failure reports.
  std::string ToString() const;
};

/// Projects a result onto its invariant signature.
RunSignature SignatureOf(const RewriteResult& result);

/// RAII application of a config's engine-selection hooks (legacy order
/// enumeration, legacy containment mapping).  Restores the previous flags
/// on destruction.  The hooks are process-global relaxed atomics, so no
/// rewriting run may be in flight on another thread while a selection is
/// alive — the differential driver runs lattice points strictly one at a
/// time for exactly this reason (the `jobs` parallelism inside one run is
/// fine: the flags are constant for its duration).
class ScopedEngineSelection {
 public:
  explicit ScopedEngineSelection(const LatticeConfig& config);
  ~ScopedEngineSelection();

  ScopedEngineSelection(const ScopedEngineSelection&) = delete;
  ScopedEngineSelection& operator=(const ScopedEngineSelection&) = delete;

 private:
  bool saved_orders_;
  bool saved_homomorphism_;
  bool saved_row_engine_;
};

/// Runs one lattice point on one case.
RewriteResult RunWithConfig(const FuzzCase& c, const LatticeConfig& config);

/// The verdict of a lattice sweep on one case.
struct DifferentialReport {
  bool ok = true;

  /// The signature every point must match (from the first config, the
  /// serial baseline).
  RunSignature baseline;
  RewriteResult baseline_result;

  /// Filled when ok is false: which config diverged and how.
  std::string divergent_config;
  std::string failure;
};

/// Runs every config on `c` and diffs the invariant signatures against
/// the first config's.  Also fails when a verify-enabled config reports a
/// found rewriting with verified == false.  Stops at the first
/// divergence.
DifferentialReport RunConfigLattice(const FuzzCase& c,
                                    const std::vector<LatticeConfig>& lattice);

}  // namespace testing
}  // namespace cqac

#endif  // CQAC_TESTING_DIFFERENTIAL_H_
