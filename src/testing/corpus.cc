#include "testing/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "parser/parser.h"

namespace cqac {
namespace testing {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::string SerializeCase(const FuzzCase& c, const std::string& comment) {
  std::ostringstream out;
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) out << "% " << line << "\n";
  }
  for (const ConjunctiveQuery& v : c.views.views()) {
    out << "view " << v.ToString() << ".\n";
  }
  out << "query " << c.query.ToString() << ".\n";
  return out.str();
}

std::optional<FuzzCase> ParseCase(const std::string& text,
                                  std::string* error) {
  FuzzCase c;
  bool have_query = false;
  std::istringstream lines(text);
  std::string raw;
  int line_no = 0;
  auto fail = [&](const std::string& message) -> std::optional<FuzzCase> {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return std::nullopt;
  };
  while (std::getline(lines, raw)) {
    ++line_no;
    std::string line = Trim(raw);
    const size_t comment = line.find_first_of("%#");
    if (comment != std::string::npos) line = Trim(line.substr(0, comment));
    if (line.empty() || line == "run" || line == "---") continue;
    std::string parse_error;
    if (line.rfind("view ", 0) == 0) {
      std::optional<ConjunctiveQuery> view =
          Parser::ParseRule(line.substr(5), &parse_error);
      if (!view.has_value()) return fail("bad view: " + parse_error);
      if (c.views.Find(view->name()) != nullptr) {
        return fail("duplicate view name '" + view->name() + "'");
      }
      c.views.Add(std::move(*view));
    } else if (line.rfind("query ", 0) == 0) {
      if (have_query) return fail("second query line");
      std::optional<ConjunctiveQuery> query =
          Parser::ParseRule(line.substr(6), &parse_error);
      if (!query.has_value()) return fail("bad query: " + parse_error);
      c.query = std::move(*query);
      have_query = true;
    } else {
      return fail("expected 'view <rule>.' or 'query <rule>.'");
    }
  }
  if (!have_query) return fail("no query line");
  return c;
}

std::optional<std::vector<CorpusEntry>> LoadCorpusDir(const std::string& dir,
                                                      std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    if (error != nullptr) *error = "not a directory: " + dir;
    return std::nullopt;
  }
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".cqac") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<CorpusEntry> corpus;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + path;
      return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string parse_error;
    std::optional<FuzzCase> c = ParseCase(text.str(), &parse_error);
    if (!c.has_value()) {
      if (error != nullptr) *error = path + ": " + parse_error;
      return std::nullopt;
    }
    corpus.push_back(
        CorpusEntry{fs::path(path).filename().string(), std::move(*c)});
  }
  return corpus;
}

}  // namespace testing
}  // namespace cqac
