#include "testing/shrinker.h"

#include <utility>
#include <vector>

namespace cqac {
namespace testing {

namespace {

/// Well-formedness every candidate must keep: the rewriter's own input
/// contract (safe rules, nonempty bodies).  Dropping below it would
/// "minimize" into a case the rewriter rejects for unrelated reasons.
bool IsWellFormed(const FuzzCase& c) {
  if (c.query.body().empty() || !c.query.IsSafe()) return false;
  for (const ConjunctiveQuery& v : c.views.views()) {
    if (v.body().empty() || !v.IsSafe()) return false;
  }
  return true;
}

class Shrinker {
 public:
  Shrinker(FuzzCase c, const FailurePredicate& fails,
           const ShrinkOptions& options)
      : best_(std::move(c)), fails_(fails), options_(options) {}

  ShrinkResult Run() {
    bool progress = true;
    while (progress && !out_of_budget_) {
      progress = false;
      progress |= DropViews();
      progress |= DropQueryComparisons();
      progress |= DropViewComparisons();
      progress |= DropQuerySubgoals();
      progress |= DropViewSubgoals();
    }
    ShrinkResult result;
    result.c = std::move(best_);
    result.evaluations = evaluations_;
    result.budget_exhausted = out_of_budget_;
    return result;
  }

 private:
  /// True when `candidate` is a keeper; if so it replaces best_.
  bool Try(FuzzCase candidate) {
    if (!IsWellFormed(candidate)) return false;
    if (evaluations_ >= options_.max_evaluations) {
      out_of_budget_ = true;
      return false;
    }
    ++evaluations_;
    if (!fails_(candidate)) return false;
    best_ = std::move(candidate);
    return true;
  }

  bool DropViews() {
    bool progress = false;
    // Index loop from the back so surviving indices stay valid after a
    // successful drop.
    for (int i = best_.views.size() - 1; i >= 0; --i) {
      FuzzCase candidate = best_;
      std::vector<ConjunctiveQuery> views = candidate.views.views();
      views.erase(views.begin() + i);
      candidate.views = ViewSet(std::move(views));
      progress |= Try(std::move(candidate));
      if (out_of_budget_) break;
    }
    return progress;
  }

  bool DropQueryComparisons() {
    bool progress = false;
    for (int i = static_cast<int>(best_.query.comparisons().size()) - 1;
         i >= 0; --i) {
      FuzzCase candidate = best_;
      std::vector<Comparison>& comps = candidate.query.mutable_comparisons();
      comps.erase(comps.begin() + i);
      progress |= Try(std::move(candidate));
      if (out_of_budget_) break;
    }
    return progress;
  }

  bool DropViewComparisons() {
    bool progress = false;
    for (int v = best_.views.size() - 1; v >= 0 && !out_of_budget_; --v) {
      for (int i = static_cast<int>(
               best_.views.views()[v].comparisons().size()) -
               1;
           i >= 0; --i) {
        if (v >= best_.views.size()) break;  // a later drop removed views
        FuzzCase candidate = best_;
        std::vector<ConjunctiveQuery> views = candidate.views.views();
        std::vector<Comparison>& comps = views[v].mutable_comparisons();
        if (i >= static_cast<int>(comps.size())) continue;
        comps.erase(comps.begin() + i);
        candidate.views = ViewSet(std::move(views));
        progress |= Try(std::move(candidate));
        if (out_of_budget_) break;
      }
    }
    return progress;
  }

  bool DropQuerySubgoals() {
    bool progress = false;
    for (int i = static_cast<int>(best_.query.body().size()) - 1; i >= 0;
         --i) {
      FuzzCase candidate = best_;
      std::vector<Atom>& body = candidate.query.mutable_body();
      body.erase(body.begin() + i);
      progress |= Try(std::move(candidate));
      if (out_of_budget_) break;
    }
    return progress;
  }

  bool DropViewSubgoals() {
    bool progress = false;
    for (int v = best_.views.size() - 1; v >= 0 && !out_of_budget_; --v) {
      for (int i =
               static_cast<int>(best_.views.views()[v].body().size()) - 1;
           i >= 0; --i) {
        if (v >= best_.views.size()) break;
        FuzzCase candidate = best_;
        std::vector<ConjunctiveQuery> views = candidate.views.views();
        std::vector<Atom>& body = views[v].mutable_body();
        if (i >= static_cast<int>(body.size())) continue;
        body.erase(body.begin() + i);
        candidate.views = ViewSet(std::move(views));
        progress |= Try(std::move(candidate));
        if (out_of_budget_) break;
      }
    }
    return progress;
  }

  FuzzCase best_;
  const FailurePredicate& fails_;
  const ShrinkOptions& options_;
  int evaluations_ = 0;
  bool out_of_budget_ = false;
};

}  // namespace

ShrinkResult ShrinkFailingCase(const FuzzCase& c, const FailurePredicate& fails,
                               const ShrinkOptions& options) {
  return Shrinker(c, fails, options).Run();
}

std::string RegressionText(const FuzzCase& c, const std::string& comment) {
  return SerializeCase(c, comment);
}

}  // namespace testing
}  // namespace cqac
