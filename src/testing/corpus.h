#ifndef CQAC_TESTING_CORPUS_H_
#define CQAC_TESTING_CORPUS_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "rewriting/view_set.h"

namespace cqac {
namespace testing {

/// One fuzzing subject: a query plus a view set.  Everything in the
/// correctness-tooling subsystem — the semantic oracle, the configuration-
/// lattice differ, the metamorphic mutators, and the shrinker — consumes
/// and produces these.
struct FuzzCase {
  ConjunctiveQuery query;
  ViewSet views;
};

/// Serializes a case in the persistent-corpus `.cqac` format: optional
/// `%` comment lines, then one `view <rule>.` line per view and a single
/// `query <rule>.` line.  The format is deliberately the job-block format
/// of the batch driver (src/runtime/batch_driver.h) and the `view`/`query`
/// commands of cqacsh, so any corpus file can be replayed through either
/// by hand.
std::string SerializeCase(const FuzzCase& c, const std::string& comment = "");

/// Parses the SerializeCase format.  Exactly one `query` line is
/// required; `view` lines are optional; `%`/`#` start comments; blank
/// lines and `run`/`---` batch separators are ignored (so single-job
/// batch files load too).  Returns nullopt and fills `*error` on failure.
std::optional<FuzzCase> ParseCase(const std::string& text,
                                  std::string* error = nullptr);

/// A corpus file: its basename and the parsed case.
struct CorpusEntry {
  std::string name;  // file name, e.g. "paper_example5.cqac"
  FuzzCase c;
};

/// Loads every `*.cqac` file under `dir` (sorted by name, so replay order
/// is deterministic).  Returns nullopt and fills `*error` when the
/// directory is unreadable or any file fails to parse — a corrupt corpus
/// entry is a test failure, not something to skip over silently.
std::optional<std::vector<CorpusEntry>> LoadCorpusDir(
    const std::string& dir, std::string* error = nullptr);

}  // namespace testing
}  // namespace cqac

#endif  // CQAC_TESTING_CORPUS_H_
