#ifndef CQAC_TESTING_ORACLE_H_
#define CQAC_TESTING_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/query.h"
#include "engine/database.h"
#include "rewriting/view_set.h"
#include "testing/corpus.h"

namespace cqac {
namespace testing {

/// A brute-force semantic oracle for `Q ≡ ∪ expansions(R)`, built from
/// first principles and deliberately independent of the containment
/// engine under test: no AcSolver, no homomorphism search, no
/// PreparedQuery, no pruned order enumeration.  Its only imports from the
/// library are the base total-order enumerator (ForEachTotalOrder, the
/// naive insertion tree), map-based query freezing (FreezeQuery), and
/// view expansion (Expand) — everything else, including query evaluation
/// and comparison satisfaction, is reimplemented here in the simplest
/// possible form.  Slow on purpose; the fuzzer keeps its inputs small.
///
/// Soundness (docs/TESTING.md spells this out in full): by the
/// Levy–Sagiv canonical-database argument, `Q1 ⊑ Q2` fails iff it fails
/// on some canonical database of Q1 — a database obtained by freezing
/// Q1's body under a total order of its variables interleaved with the
/// constants of both sides.  So checking every such database decides
/// containment exactly, and equivalence is the conjunction of the two
/// directions (for the union, "some disjunct computes the frozen head"
/// on each canonical database of Q, and each disjunct's canonical
/// databases against Q).

/// Bounds on the oracle's work.  When a budget runs out the verdict is
/// returned with `checked == false` — never a silent pass pretending the
/// input was covered.
struct OracleOptions {
  /// Canonical databases (total orders) visited per containment
  /// direction before giving up.
  int64_t max_orders = 500000;

  /// A containment direction whose order enumeration would range over
  /// more than this many distinct terms (variables + constants) is
  /// skipped as over-budget without being started (the ordered Bell
  /// numbers pass 4 million at 9 terms).
  int max_order_terms = 8;

  /// Simplify expansion disjuncts (rewriting/expansion.h SimplifyQuery)
  /// before the reverse-direction enumeration.  Equivalence-preserving
  /// and usually the difference between 3 and 10 variables; the random-
  /// database check below always evaluates the *unsimplified* expansion,
  /// so a hypothetical SimplifyQuery bug cannot hide from the oracle.
  bool simplify_expansions = true;

  /// Random-database check: how many databases, and the row budget per
  /// relation in each.
  int random_databases = 48;
  int random_max_rows = 3;
  uint64_t seed = 1;

  /// Exhaustive-database check: every database over the canonical value
  /// pool with at most this many facts in total (0 disables), capped at
  /// `max_exhaustive_databases`.
  int exhaustive_max_facts = 2;
  int64_t max_exhaustive_databases = 5000;
};

/// What an oracle check concluded.
struct OracleVerdict {
  /// False when a budget stopped the check before full coverage; `ok`
  /// then only means "no counterexample found within budget".
  bool checked = true;

  bool ok = true;

  /// Human-readable counterexample: the database, the tuple, and which
  /// side computes it.  Empty when ok.
  std::string failure;

  int64_t orders_checked = 0;
  int64_t databases_checked = 0;

  /// Merges `other` into this verdict (first failure wins).
  void Merge(const OracleVerdict& other);
};

/// The canonical value pool of a case: every constant of the query, the
/// views, and (when given) the rewriting, plus a density witness between
/// each adjacent pair and one value beyond each extreme.  Freezing any of
/// the involved queries only ever produces values from this pool's convex
/// hull, which is why databases over it suffice (see docs/TESTING.md).
std::vector<Rational> OracleValuePool(const FuzzCase& c,
                                      const UnionQuery* rewriting);

/// Reference evaluation under set semantics: recursive backtracking over
/// the body with a std::map binding, comparisons evaluated at the leaves.
/// Independent of PreparedQuery/FlatInstance; the fuzzer diffs the two
/// evaluators against each other.
Relation NaiveEvaluate(const ConjunctiveQuery& q, const Database& db);
Relation NaiveEvaluate(const UnionQuery& q, const Database& db);

/// Complete equivalence check of `query` against the expansions of
/// `rewriting` by canonical-database enumeration (both directions).
OracleVerdict CheckEquivalenceByCanonicalDatabases(
    const FuzzCase& c, const UnionQuery& rewriting,
    const OracleOptions& options = {});

/// Sampled equivalence check: random databases over the canonical value
/// pool, both sides evaluated with NaiveEvaluate and diffed; each side is
/// additionally diffed against the production evaluator (Evaluate), so a
/// compiled-evaluator bug surfaces here even when both sides of the
/// equivalence agree.
OracleVerdict CheckEquivalenceByRandomDatabases(
    const FuzzCase& c, const UnionQuery& rewriting,
    const OracleOptions& options = {});

/// Exhaustive small-database equivalence check: every database over the
/// canonical value pool with at most `exhaustive_max_facts` facts.
OracleVerdict CheckEquivalenceByExhaustiveDatabases(
    const FuzzCase& c, const UnionQuery& rewriting,
    const OracleOptions& options = {});

/// All of the above, first failure wins.  This is the oracle the fuzzer
/// and the corpus replay test call.
OracleVerdict CheckRewritingWithOracle(const FuzzCase& c,
                                       const UnionQuery& rewriting,
                                       const OracleOptions& options = {});

}  // namespace testing
}  // namespace cqac

#endif  // CQAC_TESTING_ORACLE_H_
