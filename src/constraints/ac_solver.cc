#include "constraints/ac_solver.h"

#include <algorithm>
#include <unordered_map>

namespace cqac {

namespace {

/// Internal graph over the terms of a conjunction.  Node ids index
/// `nodes`; edges are `<=`-edges, some marked strict.
struct LeqGraph {
  std::vector<Term> nodes;
  std::unordered_map<std::string, int> var_ids;
  std::map<Rational, int> const_ids;
  // adjacency[u] = list of (v, strict).
  std::vector<std::vector<std::pair<int, bool>>> adjacency;
  // Pairs of node ids constrained to differ.
  std::vector<std::pair<int, int>> disequalities;
  bool trivially_unsat = false;

  int NodeFor(const Term& t) {
    if (t.IsVariable()) {
      auto it = var_ids.find(t.name());
      if (it != var_ids.end()) return it->second;
      const int id = static_cast<int>(nodes.size());
      var_ids.emplace(t.name(), id);
      nodes.push_back(t);
      adjacency.emplace_back();
      return id;
    }
    auto it = const_ids.find(t.value());
    if (it != const_ids.end()) return it->second;
    const int id = static_cast<int>(nodes.size());
    const_ids.emplace(t.value(), id);
    nodes.push_back(t);
    adjacency.emplace_back();
    return id;
  }

  void AddEdge(int u, int v, bool strict) {
    adjacency[u].push_back({v, strict});
  }

  void AddComparison(const Comparison& c) {
    // Constant-constant comparisons are decided immediately.
    if (c.lhs().IsConstant() && c.rhs().IsConstant()) {
      if (!EvalCompOp(c.lhs().value(), c.op(), c.rhs().value())) {
        trivially_unsat = true;
      }
      return;
    }
    const int u = NodeFor(c.lhs());
    const int v = NodeFor(c.rhs());
    switch (c.op()) {
      case CompOp::kLt:
        AddEdge(u, v, /*strict=*/true);
        break;
      case CompOp::kLe:
        AddEdge(u, v, /*strict=*/false);
        break;
      case CompOp::kEq:
        AddEdge(u, v, /*strict=*/false);
        AddEdge(v, u, /*strict=*/false);
        break;
      case CompOp::kNe:
        disequalities.push_back({u, v});
        break;
      case CompOp::kGe:
        AddEdge(v, u, /*strict=*/false);
        break;
      case CompOp::kGt:
        AddEdge(v, u, /*strict=*/true);
        break;
    }
  }

  /// Adds the implicit strict order between every pair of adjacent
  /// constants, so that any constraint contradicting the numeric order of
  /// the constants closes a strict cycle.
  void AddConstantOrderEdges() {
    int prev = -1;
    for (const auto& [value, id] : const_ids) {
      if (prev >= 0) AddEdge(prev, id, /*strict=*/true);
      prev = id;
    }
  }
};

LeqGraph BuildGraph(const std::vector<Comparison>& comparisons) {
  LeqGraph g;
  for (const Comparison& c : comparisons) g.AddComparison(c);
  g.AddConstantOrderEdges();
  return g;
}

/// Iterative Tarjan SCC; returns component id per node (components are
/// numbered in reverse topological order).
std::vector<int> ComputeSccs(const LeqGraph& g, int* num_components) {
  const int n = static_cast<int>(g.nodes.size());
  std::vector<int> index(n, -1), lowlink(n, 0), component(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int next_component = 0;

  // Explicit DFS stack of (node, next-edge-position).
  std::vector<std::pair<int, size_t>> dfs;
  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    dfs.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!dfs.empty()) {
      auto& [u, edge_pos] = dfs.back();
      if (edge_pos < g.adjacency[u].size()) {
        const int v = g.adjacency[u][edge_pos].first;
        ++edge_pos;
        if (index[v] == -1) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == u) break;
          }
          ++next_component;
        }
        const int finished = u;
        dfs.pop_back();
        if (!dfs.empty()) {
          const int parent = dfs.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
        }
      }
    }
  }
  *num_components = next_component;
  return component;
}

bool GraphSatisfiable(const LeqGraph& g) {
  if (g.trivially_unsat) return false;
  int num_components = 0;
  const std::vector<int> component = ComputeSccs(g, &num_components);
  const int n = static_cast<int>(g.nodes.size());
  for (int u = 0; u < n; ++u) {
    for (const auto& [v, strict] : g.adjacency[u]) {
      if (strict && component[u] == component[v]) return false;
    }
  }
  for (const auto& [u, v] : g.disequalities) {
    if (component[u] == component[v]) return false;
  }
  return true;
}

}  // namespace

bool AcSolver::IsSatisfiable(const std::vector<Comparison>& comparisons) {
  return GraphSatisfiable(BuildGraph(comparisons));
}

bool AcSolver::Implies(const std::vector<Comparison>& axioms,
                       const Comparison& conclusion) {
  std::vector<Comparison> refutation = axioms;
  refutation.push_back(conclusion.Negated());
  return !IsSatisfiable(refutation);
}

bool AcSolver::ImpliesAll(const std::vector<Comparison>& axioms,
                          const std::vector<Comparison>& conclusions) {
  for (const Comparison& c : conclusions) {
    if (!Implies(axioms, c)) return false;
  }
  return true;
}

bool AcSolver::Equivalent(const std::vector<Comparison>& a,
                          const std::vector<Comparison>& b) {
  return ImpliesAll(a, b) && ImpliesAll(b, a);
}

std::optional<CompOp> AcSolver::ImpliedRelation(
    const std::vector<Comparison>& axioms, const Term& lhs, const Term& rhs) {
  for (CompOp op : {CompOp::kEq, CompOp::kLt, CompOp::kGt, CompOp::kLe,
                    CompOp::kGe, CompOp::kNe}) {
    if (Implies(axioms, Comparison(lhs, op, rhs))) return op;
  }
  return std::nullopt;
}

std::optional<Substitution> AcSolver::ForcedEqualities(
    const std::vector<Comparison>& comparisons) {
  LeqGraph g = BuildGraph(comparisons);
  if (!GraphSatisfiable(g)) return std::nullopt;
  int num_components = 0;
  const std::vector<int> component = ComputeSccs(g, &num_components);

  // Forced equalities over a dense order are exactly the SCCs of the
  // <=-graph: a != b would be consistent with the axioms unless there are
  // <=-paths both ways, and those paths are all in the conjunction's
  // consequences.
  std::vector<std::optional<Term>> representative(num_components);
  const int n = static_cast<int>(g.nodes.size());
  // Pick per component: a constant if present, else the least variable.
  for (int u = 0; u < n; ++u) {
    const Term& t = g.nodes[u];
    std::optional<Term>& rep = representative[component[u]];
    if (!rep.has_value()) {
      rep = t;
      continue;
    }
    if (t.IsConstant() && rep->IsVariable()) {
      rep = t;
    } else if (t.IsVariable() && rep->IsVariable() &&
               t.name() < rep->name()) {
      rep = t;
    }
  }
  Substitution result;
  for (int u = 0; u < n; ++u) {
    const Term& t = g.nodes[u];
    if (!t.IsVariable()) continue;
    const Term& rep = *representative[component[u]];
    if (rep != t) result.Bind(t.name(), rep);
  }
  return result;
}

bool AcSolver::SatisfiedBy(const std::vector<Comparison>& comparisons,
                           const std::map<std::string, Rational>& assignment) {
  auto value_of = [&assignment](const Term& t,
                                Rational* out) -> bool {
    if (t.IsConstant()) {
      *out = t.value();
      return true;
    }
    auto it = assignment.find(t.name());
    if (it == assignment.end()) return false;
    *out = it->second;
    return true;
  };
  for (const Comparison& c : comparisons) {
    Rational a, b;
    if (!value_of(c.lhs(), &a) || !value_of(c.rhs(), &b)) return false;
    if (!EvalCompOp(a, c.op(), b)) return false;
  }
  return true;
}

std::vector<Comparison> AcSolver::RemoveRedundant(
    std::vector<Comparison> comparisons) {
  if (!IsSatisfiable(comparisons)) return comparisons;
  // Greedily drop any comparison implied by the others.
  for (size_t i = 0; i < comparisons.size();) {
    std::vector<Comparison> rest;
    rest.reserve(comparisons.size() - 1);
    for (size_t j = 0; j < comparisons.size(); ++j) {
      if (j != i) rest.push_back(comparisons[j]);
    }
    if (Implies(rest, comparisons[i])) {
      comparisons = std::move(rest);
    } else {
      ++i;
    }
  }
  return comparisons;
}

}  // namespace cqac
