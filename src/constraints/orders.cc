#include "constraints/orders.h"

#include <algorithm>
#include <limits>

#include "constraints/ac_solver.h"

namespace cqac {

Term OrderBlock::Representative() const {
  if (constant.has_value()) return Term::Constant(*constant);
  return Term::Variable(variables.front());
}

std::map<std::string, Rational> TotalOrder::ToAssignment() const {
  const int n = static_cast<int>(blocks.size());
  std::vector<Rational> values(n);

  // Positions of the blocks that carry constants; their values are fixed.
  std::vector<int> const_positions;
  for (int i = 0; i < n; ++i) {
    if (blocks[i].constant.has_value()) {
      values[i] = *blocks[i].constant;
      const_positions.push_back(i);
    }
  }

  if (const_positions.empty()) {
    for (int i = 0; i < n; ++i) values[i] = Rational(i + 1);
  } else {
    // Before the first constant: integers descending below it.
    const int first = const_positions.front();
    for (int i = 0; i < first; ++i) {
      values[i] = values[first] - Rational(first - i);
    }
    // Between consecutive constants: evenly spaced rationals (density).
    for (size_t c = 0; c + 1 < const_positions.size(); ++c) {
      const int lo = const_positions[c];
      const int hi = const_positions[c + 1];
      const int gap = hi - lo - 1;
      const Rational span = values[hi] - values[lo];
      for (int i = lo + 1; i < hi; ++i) {
        values[i] = values[lo] + span * Rational(i - lo, gap + 1);
      }
    }
    // After the last constant: integers ascending above it.
    const int last = const_positions.back();
    for (int i = last + 1; i < n; ++i) {
      values[i] = values[last] + Rational(i - last);
    }
  }

  std::map<std::string, Rational> assignment;
  for (int i = 0; i < n; ++i) {
    for (const std::string& v : blocks[i].variables) {
      assignment.emplace(v, values[i]);
    }
  }
  return assignment;
}

std::vector<Comparison> TotalOrder::ToComparisons() const {
  std::vector<Comparison> out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const Term rep = blocks[i].Representative();
    for (const std::string& v : blocks[i].variables) {
      const Term t = Term::Variable(v);
      if (t != rep) out.push_back(Comparison(t, CompOp::kEq, rep));
    }
    if (i + 1 < blocks.size()) {
      out.push_back(
          Comparison(rep, CompOp::kLt, blocks[i + 1].Representative()));
    }
  }
  return out;
}

std::vector<Comparison> TotalOrder::ProjectedComparisons(
    const std::vector<std::string>& keep_vars) const {
  std::vector<Comparison> out;
  std::optional<Term> prev_rep;
  for (const OrderBlock& block : blocks) {
    OrderBlock restricted;
    restricted.constant = block.constant;
    for (const std::string& v : block.variables) {
      if (std::find(keep_vars.begin(), keep_vars.end(), v) !=
          keep_vars.end()) {
        restricted.variables.push_back(v);
      }
    }
    if (restricted.variables.empty() && !restricted.constant.has_value()) {
      continue;  // Block invisible after projection.
    }
    const Term rep = restricted.Representative();
    for (const std::string& v : restricted.variables) {
      const Term t = Term::Variable(v);
      if (t != rep) out.push_back(Comparison(t, CompOp::kEq, rep));
    }
    if (prev_rep.has_value() &&
        !(prev_rep->IsConstant() && rep.IsConstant())) {
      out.push_back(Comparison(*prev_rep, CompOp::kLt, rep));
    }
    prev_rep = rep;
  }
  return out;
}

std::string TotalOrder::ToString() const {
  std::string out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) out += " < ";
    const OrderBlock& block = blocks[i];
    bool first = true;
    for (const std::string& v : block.variables) {
      if (!first) out += " = ";
      first = false;
      out += v;
    }
    if (block.constant.has_value()) {
      if (!first) out += " = ";
      out += block.constant->ToString();
    }
  }
  return out;
}

namespace {

/// Recursively inserts `variables[next..]` into `order`, calling `fn` on
/// every completed order.  Returns false once `fn` asks to stop.
bool InsertRemaining(const std::vector<std::string>& variables, size_t next,
                     TotalOrder* order,
                     const std::function<bool(const TotalOrder&)>& fn) {
  if (next == variables.size()) return fn(*order);
  const std::string& var = variables[next];
  // Option 1: join each existing block.  Indexed loop: deeper recursion
  // levels insert and erase blocks, which invalidates references.
  for (size_t b = 0; b < order->blocks.size(); ++b) {
    order->blocks[b].variables.push_back(var);
    if (!InsertRemaining(variables, next + 1, order, fn)) return false;
    order->blocks[b].variables.pop_back();
  }
  // Option 2: open a new block in each gap.
  OrderBlock fresh;
  fresh.variables.push_back(var);
  for (size_t gap = 0; gap <= order->blocks.size(); ++gap) {
    order->blocks.insert(order->blocks.begin() + gap, fresh);
    if (!InsertRemaining(variables, next + 1, order, fn)) return false;
    order->blocks.erase(order->blocks.begin() + gap);
  }
  return true;
}

}  // namespace

void ForEachTotalOrder(const std::vector<std::string>& variables,
                       const std::vector<Rational>& constants,
                       const std::function<bool(const TotalOrder&)>& fn) {
  std::vector<Rational> sorted_constants = constants;
  std::sort(sorted_constants.begin(), sorted_constants.end());
  sorted_constants.erase(
      std::unique(sorted_constants.begin(), sorted_constants.end()),
      sorted_constants.end());

  TotalOrder base;
  for (const Rational& c : sorted_constants) {
    OrderBlock block;
    block.constant = c;
    base.blocks.push_back(block);
  }
  InsertRemaining(variables, 0, &base, fn);
}

std::vector<TotalOrder> EnumerateTotalOrders(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants) {
  std::vector<TotalOrder> out;
  ForEachTotalOrder(variables, constants, [&out](const TotalOrder& order) {
    out.push_back(order);
    return true;
  });
  return out;
}

namespace {

/// As InsertRemaining, but prunes any prefix whose order constraints are
/// already inconsistent with `axioms`.
bool InsertRemainingSatisfying(
    const std::vector<std::string>& variables, size_t next, TotalOrder* order,
    const std::vector<Comparison>& axioms,
    const std::function<bool(const TotalOrder&)>& fn) {
  {
    // Consistency of the partial placement: the axioms conjoined with the
    // order constraints over the already-placed items must be satisfiable.
    std::vector<Comparison> combined = axioms;
    const std::vector<Comparison> placed = order->ToComparisons();
    combined.insert(combined.end(), placed.begin(), placed.end());
    if (!AcSolver::IsSatisfiable(combined)) return true;  // Prune subtree.
  }
  if (next == variables.size()) {
    // The order is total over all variables and the axioms' constants, so
    // consistency of the conjunction implies the witness satisfies the
    // axioms; check explicitly for safety.
    if (!AcSolver::SatisfiedBy(axioms, order->ToAssignment())) return true;
    return fn(*order);
  }
  const std::string& var = variables[next];
  for (size_t b = 0; b < order->blocks.size(); ++b) {
    order->blocks[b].variables.push_back(var);
    if (!InsertRemainingSatisfying(variables, next + 1, order, axioms, fn)) {
      return false;
    }
    order->blocks[b].variables.pop_back();
  }
  OrderBlock fresh;
  fresh.variables.push_back(var);
  for (size_t gap = 0; gap <= order->blocks.size(); ++gap) {
    order->blocks.insert(order->blocks.begin() + gap, fresh);
    if (!InsertRemainingSatisfying(variables, next + 1, order, axioms, fn)) {
      return false;
    }
    order->blocks.erase(order->blocks.begin() + gap);
  }
  return true;
}

}  // namespace

void ForEachSatisfyingOrder(const std::vector<std::string>& variables,
                            const std::vector<Rational>& constants,
                            const std::vector<Comparison>& axioms,
                            const std::function<bool(const TotalOrder&)>& fn) {
  std::vector<Rational> sorted_constants = constants;
  std::sort(sorted_constants.begin(), sorted_constants.end());
  sorted_constants.erase(
      std::unique(sorted_constants.begin(), sorted_constants.end()),
      sorted_constants.end());

  TotalOrder base;
  for (const Rational& c : sorted_constants) {
    OrderBlock block;
    block.constant = c;
    base.blocks.push_back(block);
  }
  InsertRemainingSatisfying(variables, 0, &base, axioms, fn);
}

int64_t CountTotalOrders(int num_variables) {
  if (num_variables < 0) return 0;
  // Fubini numbers: a(n) = sum_{k=1..n} C(n,k) a(n-k), a(0) = 1.
  std::vector<int64_t> a(num_variables + 1, 0);
  a[0] = 1;
  for (int n = 1; n <= num_variables; ++n) {
    // Binomial row C(n, k) computed incrementally.
    int64_t binom = 1;
    int64_t total = 0;
    for (int k = 1; k <= n; ++k) {
      binom = binom * (n - k + 1) / k;
      const int64_t term = binom * a[n - k];
      if (term < 0 || total > std::numeric_limits<int64_t>::max() - term) {
        return std::numeric_limits<int64_t>::max();
      }
      total += term;
    }
    a[n] = total;
  }
  return a[num_variables];
}

}  // namespace cqac
