#include "constraints/orders.h"

#include <algorithm>
#include <limits>

#include "constraints/ac_solver.h"

namespace cqac {

Term OrderBlock::Representative() const {
  if (constant.has_value()) return Term::Constant(*constant);
  return Term::Variable(variables.front());
}

void TotalOrder::BlockValues(std::vector<Rational>* out) const {
  const int n = static_cast<int>(blocks.size());
  std::vector<Rational>& values = *out;
  values.resize(n);

  // Positions of the blocks that carry constants; their values are fixed.
  // (Constants appear in ascending order, so the values below are strictly
  // increasing across blocks.)
  int first = -1;
  int last = -1;
  for (int i = 0; i < n; ++i) {
    if (blocks[i].constant.has_value()) {
      values[i] = *blocks[i].constant;
      if (first < 0) first = i;
      last = i;
    }
  }

  if (first < 0) {
    for (int i = 0; i < n; ++i) values[i] = Rational(i + 1);
    return;
  }
  // Before the first constant: integers descending below it.
  for (int i = 0; i < first; ++i) {
    values[i] = values[first] - Rational(first - i);
  }
  // Between consecutive constants: evenly spaced rationals (density).
  int lo = first;
  for (int hi = first + 1; hi <= last; ++hi) {
    if (!blocks[hi].constant.has_value()) continue;
    const int gap = hi - lo - 1;
    const Rational span = values[hi] - values[lo];
    for (int i = lo + 1; i < hi; ++i) {
      values[i] = values[lo] + span * Rational(i - lo, gap + 1);
    }
    lo = hi;
  }
  // After the last constant: integers ascending above it.
  for (int i = last + 1; i < n; ++i) {
    values[i] = values[last] + Rational(i - last);
  }
}

std::map<std::string, Rational> TotalOrder::ToAssignment() const {
  std::vector<Rational> values;
  BlockValues(&values);
  std::map<std::string, Rational> assignment;
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (const std::string& v : blocks[i].variables) {
      assignment.emplace(v, values[i]);
    }
  }
  return assignment;
}

std::vector<Comparison> TotalOrder::ToComparisons() const {
  std::vector<Comparison> out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const Term rep = blocks[i].Representative();
    for (const std::string& v : blocks[i].variables) {
      const Term t = Term::Variable(v);
      if (t != rep) out.push_back(Comparison(t, CompOp::kEq, rep));
    }
    if (i + 1 < blocks.size()) {
      out.push_back(
          Comparison(rep, CompOp::kLt, blocks[i + 1].Representative()));
    }
  }
  return out;
}

std::vector<Comparison> TotalOrder::ProjectedComparisons(
    const std::vector<std::string>& keep_vars) const {
  std::vector<Comparison> out;
  std::optional<Term> prev_rep;
  for (const OrderBlock& block : blocks) {
    OrderBlock restricted;
    restricted.constant = block.constant;
    for (const std::string& v : block.variables) {
      if (std::find(keep_vars.begin(), keep_vars.end(), v) !=
          keep_vars.end()) {
        restricted.variables.push_back(v);
      }
    }
    if (restricted.variables.empty() && !restricted.constant.has_value()) {
      continue;  // Block invisible after projection.
    }
    const Term rep = restricted.Representative();
    for (const std::string& v : restricted.variables) {
      const Term t = Term::Variable(v);
      if (t != rep) out.push_back(Comparison(t, CompOp::kEq, rep));
    }
    if (prev_rep.has_value() &&
        !(prev_rep->IsConstant() && rep.IsConstant())) {
      out.push_back(Comparison(*prev_rep, CompOp::kLt, rep));
    }
    prev_rep = rep;
  }
  return out;
}

std::string TotalOrder::ToString() const {
  std::string out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) out += " < ";
    const OrderBlock& block = blocks[i];
    bool first = true;
    for (const std::string& v : block.variables) {
      if (!first) out += " = ";
      first = false;
      out += v;
    }
    if (block.constant.has_value()) {
      if (!first) out += " = ";
      out += block.constant->ToString();
    }
  }
  return out;
}

namespace {

/// Recursively inserts `variables[next..]` into `order`, calling `fn` on
/// every completed order.  Returns false once `fn` asks to stop.
bool InsertRemaining(const std::vector<std::string>& variables, size_t next,
                     TotalOrder* order,
                     const std::function<bool(const TotalOrder&)>& fn) {
  if (next == variables.size()) return fn(*order);
  const std::string& var = variables[next];
  // Option 1: join each existing block.  Indexed loop: deeper recursion
  // levels insert and erase blocks, which invalidates references.
  for (size_t b = 0; b < order->blocks.size(); ++b) {
    order->blocks[b].variables.push_back(var);
    if (!InsertRemaining(variables, next + 1, order, fn)) return false;
    order->blocks[b].variables.pop_back();
  }
  // Option 2: open a new block in each gap.
  OrderBlock fresh;
  fresh.variables.push_back(var);
  for (size_t gap = 0; gap <= order->blocks.size(); ++gap) {
    order->blocks.insert(order->blocks.begin() + gap, fresh);
    if (!InsertRemaining(variables, next + 1, order, fn)) return false;
    order->blocks.erase(order->blocks.begin() + gap);
  }
  return true;
}

}  // namespace

void ForEachTotalOrder(const std::vector<std::string>& variables,
                       const std::vector<Rational>& constants,
                       const std::function<bool(const TotalOrder&)>& fn) {
  std::vector<Rational> sorted_constants = constants;
  std::sort(sorted_constants.begin(), sorted_constants.end());
  sorted_constants.erase(
      std::unique(sorted_constants.begin(), sorted_constants.end()),
      sorted_constants.end());

  TotalOrder base;
  for (const Rational& c : sorted_constants) {
    OrderBlock block;
    block.constant = c;
    base.blocks.push_back(block);
  }
  InsertRemaining(variables, 0, &base, fn);
}

std::vector<TotalOrder> EnumerateTotalOrders(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants) {
  std::vector<TotalOrder> out;
  ForEachTotalOrder(variables, constants, [&out](const TotalOrder& order) {
    out.push_back(order);
    return true;
  });
  return out;
}

namespace {

/// Satisfying-order enumeration with a compiled axiom filter.
///
/// Visits exactly the orders the naive enumerate-then-filter loop would:
/// pruning only removes subtrees containing no satisfying leaf, and the
/// leaf test itself is unchanged in outcome, so the sequence of orders
/// handed to `fn` is identical to the reference behavior (axioms +
/// order->ToComparisons() into AcSolver at every node).
///
/// The compilation: axiom terms resolve to block positions.  Constants
/// always occupy their sorted base block; variable placements are tracked
/// incrementally as the recursion inserts/removes them (block indexes
/// shift when a gap insertion opens a new block).  Once every axiom
/// variable is placed, the block chain totally orders all axiom terms —
/// block values are strictly increasing — so each axiom's truth is decided
/// by comparing block positions, and satisfiability of axioms+order
/// degenerates to "every axiom holds by position": O(|axioms|) integer
/// compares per node, no graph construction, no allocation.  While some
/// axiom variable is unplaced (only near the root, or when an axiom
/// mentions a variable outside `variables`), the reference AcSolver check
/// runs instead.
class SatisfyingOrderEnumerator {
 public:
  SatisfyingOrderEnumerator(const std::vector<std::string>& variables,
                            const std::vector<Rational>& sorted_constants,
                            const std::vector<Comparison>& axioms)
      : variables_(variables), axioms_(axioms) {
    // Compile each axiom to (position-source, op, position-source), where a
    // source is either a tracked variable slot or a constant's block slot.
    auto var_slot = [this](const std::string& name) -> int {
      auto [it, inserted] =
          var_ids_.emplace(name, static_cast<int>(var_block_.size()));
      if (inserted) var_block_.push_back(kUnplaced);
      return it->second;
    };
    auto compile_term = [&](const Term& t, bool* is_var, int* slot) {
      if (t.IsVariable()) {
        *is_var = true;
        *slot = var_slot(t.name());
        return;
      }
      *is_var = false;
      const auto it = std::lower_bound(sorted_constants.begin(),
                                       sorted_constants.end(), t.value());
      if (it == sorted_constants.end() || *it != t.value()) {
        // Contract violation (axiom constant outside `constants`): the
        // position encoding cannot represent it; stay on the reference
        // checks throughout.
        incomplete_ = true;
        *slot = 0;
        return;
      }
      *slot = static_cast<int>(it - sorted_constants.begin());
    };
    compiled_.reserve(axioms.size());
    for (const Comparison& c : axioms) {
      CompiledAxiom ca;
      ca.op = c.op();
      compile_term(c.lhs(), &ca.lhs_is_var, &ca.lhs);
      compile_term(c.rhs(), &ca.rhs_is_var, &ca.rhs);
      compiled_.push_back(ca);
    }
    // Constant blocks start at positions 0..k-1 of the base order and
    // shift as variable blocks open before them.
    const_block_.resize(sorted_constants.size());
    for (size_t i = 0; i < sorted_constants.size(); ++i) {
      const_block_[i] = static_cast<int>(i);
    }
    unplaced_ = static_cast<int>(var_block_.size());
    // Which tracked variable (if any) each insertion step places.
    insertion_var_.assign(variables.size(), kNotTracked);
    for (size_t i = 0; i < variables.size(); ++i) {
      const auto it = var_ids_.find(variables[i]);
      if (it != var_ids_.end()) insertion_var_[i] = it->second;
    }
  }

  void Run(TotalOrder* order, const std::function<bool(const TotalOrder&)>& fn) {
    Insert(0, order, fn);
  }

 private:
  static constexpr int kUnplaced = -1;
  static constexpr int kNotTracked = -1;

  struct CompiledAxiom {
    bool lhs_is_var;
    bool rhs_is_var;
    int lhs;  // tracked-variable slot or constant slot
    int rhs;
    CompOp op;
  };

  bool FastPath() const { return !incomplete_ && unplaced_ == 0; }

  /// With every axiom term placed, block positions decide each axiom
  /// (block values are strictly increasing, constants sit at their own
  /// values): the conjunction is satisfiable iff every axiom holds.
  bool AxiomsHoldByPosition() const {
    for (const CompiledAxiom& a : compiled_) {
      const int i = a.lhs_is_var ? var_block_[a.lhs] : const_block_[a.lhs];
      const int j = a.rhs_is_var ? var_block_[a.rhs] : const_block_[a.rhs];
      bool ok = false;
      switch (a.op) {
        case CompOp::kLt: ok = i < j; break;
        case CompOp::kLe: ok = i <= j; break;
        case CompOp::kEq: ok = i == j; break;
        case CompOp::kNe: ok = i != j; break;
        case CompOp::kGe: ok = i >= j; break;
        case CompOp::kGt: ok = i > j; break;
      }
      if (!ok) return false;
    }
    return true;
  }

  /// Satisfiability of axioms + the partial order's constraints (the
  /// subtree prune).  Reference path reuses the `combined_` buffer.
  bool Consistent(const TotalOrder& order) {
    if (FastPath()) return AxiomsHoldByPosition();
    combined_ = axioms_;
    const std::vector<Comparison> placed = order.ToComparisons();
    combined_.insert(combined_.end(), placed.begin(), placed.end());
    return AcSolver::IsSatisfiable(combined_);
  }

  bool Insert(size_t next, TotalOrder* order,
              const std::function<bool(const TotalOrder&)>& fn) {
    if (!Consistent(*order)) return true;  // Prune subtree.
    if (next == variables_.size()) {
      // On the fast path the positional check above already decided the
      // (now total) order satisfies the axioms; otherwise verify the
      // witness explicitly, as the reference does.
      if (!FastPath() &&
          !AcSolver::SatisfiedBy(axioms_, order->ToAssignment())) {
        return true;
      }
      return fn(*order);
    }
    const std::string& var = variables_[next];
    const int tracked = insertion_var_[next];
    for (size_t b = 0; b < order->blocks.size(); ++b) {
      order->blocks[b].variables.push_back(var);
      if (tracked != kNotTracked) {
        var_block_[tracked] = static_cast<int>(b);
        --unplaced_;
      }
      const bool keep_going = Insert(next + 1, order, fn);
      if (tracked != kNotTracked) {
        var_block_[tracked] = kUnplaced;
        ++unplaced_;
      }
      order->blocks[b].variables.pop_back();
      if (!keep_going) return false;
    }
    OrderBlock fresh;
    fresh.variables.push_back(var);
    for (size_t gap = 0; gap <= order->blocks.size(); ++gap) {
      order->blocks.insert(order->blocks.begin() + gap, fresh);
      ShiftUp(static_cast<int>(gap));
      if (tracked != kNotTracked) {
        var_block_[tracked] = static_cast<int>(gap);
        --unplaced_;
      }
      const bool keep_going = Insert(next + 1, order, fn);
      if (tracked != kNotTracked) {
        var_block_[tracked] = kUnplaced;
        ++unplaced_;
      }
      ShiftDown(static_cast<int>(gap));
      order->blocks.erase(order->blocks.begin() + gap);
      if (!keep_going) return false;
    }
    return true;
  }

  /// A new block opened at `gap`: every tracked placement at or after it
  /// moves up one position.  (kUnplaced is negative, so it never shifts.)
  void ShiftUp(int gap) {
    for (int& b : var_block_) {
      if (b >= gap) ++b;
    }
    for (int& b : const_block_) {
      if (b >= gap) ++b;
    }
  }

  /// Inverse of ShiftUp after the block at `gap` is removed.
  void ShiftDown(int gap) {
    for (int& b : var_block_) {
      if (b > gap) --b;
    }
    for (int& b : const_block_) {
      if (b > gap) --b;
    }
  }

  const std::vector<std::string>& variables_;
  const std::vector<Comparison>& axioms_;
  std::map<std::string, int> var_ids_;
  std::vector<CompiledAxiom> compiled_;
  std::vector<int> var_block_;    // tracked variable -> block, or kUnplaced
  std::vector<int> const_block_;  // constant slot -> block (always placed)
  std::vector<int> insertion_var_;
  int unplaced_ = 0;
  bool incomplete_ = false;
  std::vector<Comparison> combined_;
};

}  // namespace

void ForEachSatisfyingOrder(const std::vector<std::string>& variables,
                            const std::vector<Rational>& constants,
                            const std::vector<Comparison>& axioms,
                            const std::function<bool(const TotalOrder&)>& fn) {
  std::vector<Rational> sorted_constants = constants;
  std::sort(sorted_constants.begin(), sorted_constants.end());
  sorted_constants.erase(
      std::unique(sorted_constants.begin(), sorted_constants.end()),
      sorted_constants.end());

  TotalOrder base;
  for (const Rational& c : sorted_constants) {
    OrderBlock block;
    block.constant = c;
    base.blocks.push_back(block);
  }
  SatisfyingOrderEnumerator(variables, sorted_constants, axioms)
      .Run(&base, fn);
}

int64_t CountTotalOrders(int num_variables) {
  if (num_variables < 0) return 0;
  // Fubini numbers: a(n) = sum_{k=1..n} C(n,k) a(n-k), a(0) = 1.
  std::vector<int64_t> a(num_variables + 1, 0);
  a[0] = 1;
  for (int n = 1; n <= num_variables; ++n) {
    // Binomial row C(n, k) computed incrementally.
    int64_t binom = 1;
    int64_t total = 0;
    for (int k = 1; k <= n; ++k) {
      binom = binom * (n - k + 1) / k;
      const int64_t term = binom * a[n - k];
      if (term < 0 || total > std::numeric_limits<int64_t>::max() - term) {
        return std::numeric_limits<int64_t>::max();
      }
      total += term;
    }
    a[n] = total;
  }
  return a[num_variables];
}

}  // namespace cqac
