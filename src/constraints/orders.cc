#include "constraints/orders.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>

#include "constraints/ac_solver.h"

namespace cqac {

Term OrderBlock::Representative() const {
  if (constant.has_value()) return Term::Constant(*constant);
  return Term::Variable(variables.front());
}

void TotalOrder::BlockValues(std::vector<Rational>* out) const {
  const int n = static_cast<int>(blocks.size());
  std::vector<Rational>& values = *out;
  values.resize(n);

  // Positions of the blocks that carry constants; their values are fixed.
  // (Constants appear in ascending order, so the values below are strictly
  // increasing across blocks.)
  int first = -1;
  int last = -1;
  for (int i = 0; i < n; ++i) {
    if (blocks[i].constant.has_value()) {
      values[i] = *blocks[i].constant;
      if (first < 0) first = i;
      last = i;
    }
  }

  if (first < 0) {
    for (int i = 0; i < n; ++i) values[i] = Rational(i + 1);
    return;
  }
  // Before the first constant: integers descending below it.
  for (int i = 0; i < first; ++i) {
    values[i] = values[first] - Rational(first - i);
  }
  // Between consecutive constants: evenly spaced rationals (density).
  int lo = first;
  for (int hi = first + 1; hi <= last; ++hi) {
    if (!blocks[hi].constant.has_value()) continue;
    const int gap = hi - lo - 1;
    const Rational span = values[hi] - values[lo];
    for (int i = lo + 1; i < hi; ++i) {
      values[i] = values[lo] + span * Rational(i - lo, gap + 1);
    }
    lo = hi;
  }
  // After the last constant: integers ascending above it.
  for (int i = last + 1; i < n; ++i) {
    values[i] = values[last] + Rational(i - last);
  }
}

std::map<std::string, Rational> TotalOrder::ToAssignment() const {
  std::vector<Rational> values;
  BlockValues(&values);
  std::map<std::string, Rational> assignment;
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (const std::string& v : blocks[i].variables) {
      assignment.emplace(v, values[i]);
    }
  }
  return assignment;
}

std::vector<Comparison> TotalOrder::ToComparisons() const {
  std::vector<Comparison> out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const Term rep = blocks[i].Representative();
    for (const std::string& v : blocks[i].variables) {
      const Term t = Term::Variable(v);
      if (t != rep) out.push_back(Comparison(t, CompOp::kEq, rep));
    }
    if (i + 1 < blocks.size()) {
      out.push_back(
          Comparison(rep, CompOp::kLt, blocks[i + 1].Representative()));
    }
  }
  return out;
}

std::vector<Comparison> TotalOrder::ProjectedComparisons(
    const std::vector<std::string>& keep_vars) const {
  std::vector<Comparison> out;
  std::optional<Term> prev_rep;
  for (const OrderBlock& block : blocks) {
    OrderBlock restricted;
    restricted.constant = block.constant;
    for (const std::string& v : block.variables) {
      if (std::find(keep_vars.begin(), keep_vars.end(), v) !=
          keep_vars.end()) {
        restricted.variables.push_back(v);
      }
    }
    if (restricted.variables.empty() && !restricted.constant.has_value()) {
      continue;  // Block invisible after projection.
    }
    const Term rep = restricted.Representative();
    for (const std::string& v : restricted.variables) {
      const Term t = Term::Variable(v);
      if (t != rep) out.push_back(Comparison(t, CompOp::kEq, rep));
    }
    if (prev_rep.has_value() &&
        !(prev_rep->IsConstant() && rep.IsConstant())) {
      out.push_back(Comparison(*prev_rep, CompOp::kLt, rep));
    }
    prev_rep = rep;
  }
  return out;
}

std::string TotalOrder::ToString() const {
  std::string out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) out += " < ";
    const OrderBlock& block = blocks[i];
    bool first = true;
    for (const std::string& v : block.variables) {
      if (!first) out += " = ";
      first = false;
      out += v;
    }
    if (block.constant.has_value()) {
      if (!first) out += " = ";
      out += block.constant->ToString();
    }
  }
  return out;
}

namespace {

/// Recursively inserts `variables[next..]` into `order`, calling `fn` on
/// every completed order.  Returns false once `fn` asks to stop.
bool InsertRemaining(const std::vector<std::string>& variables, size_t next,
                     TotalOrder* order,
                     const std::function<bool(const TotalOrder&)>& fn) {
  if (next == variables.size()) return fn(*order);
  const std::string& var = variables[next];
  // Option 1: join each existing block.  Indexed loop: deeper recursion
  // levels insert and erase blocks, which invalidates references.
  for (size_t b = 0; b < order->blocks.size(); ++b) {
    order->blocks[b].variables.push_back(var);
    if (!InsertRemaining(variables, next + 1, order, fn)) return false;
    order->blocks[b].variables.pop_back();
  }
  // Option 2: open a new block in each gap.
  OrderBlock fresh;
  fresh.variables.push_back(var);
  for (size_t gap = 0; gap <= order->blocks.size(); ++gap) {
    order->blocks.insert(order->blocks.begin() + gap, fresh);
    if (!InsertRemaining(variables, next + 1, order, fn)) return false;
    order->blocks.erase(order->blocks.begin() + gap);
  }
  return true;
}

}  // namespace

void ForEachTotalOrder(const std::vector<std::string>& variables,
                       const std::vector<Rational>& constants,
                       const std::function<bool(const TotalOrder&)>& fn) {
  std::vector<Rational> sorted_constants = constants;
  std::sort(sorted_constants.begin(), sorted_constants.end());
  sorted_constants.erase(
      std::unique(sorted_constants.begin(), sorted_constants.end()),
      sorted_constants.end());

  TotalOrder base;
  for (const Rational& c : sorted_constants) {
    OrderBlock block;
    block.constant = c;
    base.blocks.push_back(block);
  }
  InsertRemaining(variables, 0, &base, fn);
}

std::vector<TotalOrder> EnumerateTotalOrders(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants) {
  std::vector<TotalOrder> out;
  ForEachTotalOrder(variables, constants, [&out](const TotalOrder& order) {
    out.push_back(order);
    return true;
  });
  return out;
}

namespace {

std::vector<Rational> SortedUniqueConstants(
    const std::vector<Rational>& constants) {
  std::vector<Rational> sorted = constants;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

TotalOrder BaseOrder(const std::vector<Rational>& sorted_constants) {
  TotalOrder base;
  for (const Rational& c : sorted_constants) {
    OrderBlock block;
    block.constant = c;
    base.blocks.push_back(block);
  }
  return base;
}

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<int64_t>::max() / b) {
    return std::numeric_limits<int64_t>::max();
  }
  return a * b;
}

/// C(n, k), saturating.  The running product is exactly divisible by `i`
/// at every step (it is C(n-k+i, i) * i!/i! in disguise).
int64_t Binomial(int64_t n, int64_t k) {
  int64_t r = 1;
  for (int64_t i = 1; i <= k; ++i) {
    const int64_t factor = n - k + i;
    if (r > std::numeric_limits<int64_t>::max() / factor) {
      return std::numeric_limits<int64_t>::max();
    }
    r = r * factor / i;
  }
  return r;
}

/// The prefix-pruned enumeration tree behind ForEachSatisfyingOrder and
/// ForEachSatisfyingOrderPruned.
///
/// Emits exactly the satisfying orders the naive enumerate-then-filter
/// reference would (ForEachSatisfyingOrderLegacy), in the same sequence,
/// modulo the symmetry reduction: pruning only removes subtrees containing
/// no satisfying leaf, and symmetry only collapses orbits whose members
/// the caller declared equivalent.
///
/// The key invariant making prefix checks sound: once two terms are both
/// placed, their relative order (<, =, >) never changes anywhere in the
/// subtree — blocks are never merged, and a gap insertion only shifts
/// positions uniformly.  So every axiom is decided permanently the moment
/// its second endpoint is placed, and a violated axiom kills the entire
/// subtree before it is built.  To also cut placements that only *implied*
/// constraints forbid (X < Y, Y < Z placed as Z..X with Y still pending),
/// the axioms are closed under transitivity across variables and constants
/// at compile time, and the closure's constraints are checked positionally
/// the same way.
///
/// Symmetry reduction: for each group of interchangeable variables the
/// tree only generates placements in which the group's members sit at
/// nondecreasing block positions (in group order).  Each emitted order
/// represents its whole orbit; the orbit size — the multinomial of the
/// group's per-block occupancy — is reported as the multiplicity.
class PrunedOrderEnumerator {
 public:
  PrunedOrderEnumerator(const std::vector<std::string>& variables,
                        const std::vector<Rational>& sorted_constants,
                        const std::vector<Comparison>& axioms,
                        const OrderSymmetry& symmetry,
                        OrderEnumerationStats* stats)
      : variables_(variables), axioms_(axioms), stats_(stats) {
    Compile(sorted_constants, axioms, symmetry);
  }

  void Run(TotalOrder* order,
           const std::function<bool(const TotalOrder&, int64_t)>& fn) {
    if (impossible_) return;
    if (incomplete_) {
      InsertFallback(0, order, fn);
      return;
    }
    ++stats_->nodes_visited;  // Root: the constants-only base order.
    Insert(0, order, fn);
  }

 private:
  static constexpr int kUnplaced = -1;
  static constexpr int kNotTracked = -1;
  static constexpr int kNoGroup = -1;

  enum class CheckOp { kLt, kLe, kNe };

  /// One positional constraint `lhs op rhs` between tracked-variable slots
  /// and/or constant slots, checked when its last endpoint is placed.
  struct PositionalCheck {
    bool lhs_is_var;
    bool rhs_is_var;
    int lhs;
    int rhs;
    CheckOp op;
  };

  void Compile(const std::vector<Rational>& sorted_constants,
               const std::vector<Comparison>& axioms,
               const OrderSymmetry& symmetry) {
    auto var_slot = [this](const std::string& name) -> int {
      auto [it, inserted] =
          var_ids_.emplace(name, static_cast<int>(var_block_.size()));
      if (inserted) var_block_.push_back(kUnplaced);
      return it->second;
    };
    // Resolve every axiom term to a tracked-variable or constant slot.
    struct Side {
      bool is_var;
      int slot;
    };
    auto compile_term = [&](const Term& t) -> Side {
      if (t.IsVariable()) return {true, var_slot(t.name())};
      const auto it = std::lower_bound(sorted_constants.begin(),
                                       sorted_constants.end(), t.value());
      if (it == sorted_constants.end() || *it != t.value()) {
        // Contract violation (axiom constant outside `constants`): the
        // position encoding cannot represent it.
        incomplete_ = true;
        return {false, 0};
      }
      return {false, static_cast<int>(it - sorted_constants.begin())};
    };
    struct RawAxiom {
      Side lhs;
      Side rhs;
      CompOp op;
    };
    std::vector<RawAxiom> raw;
    raw.reserve(axioms.size());
    for (const Comparison& c : axioms) {
      raw.push_back({compile_term(c.lhs()), compile_term(c.rhs()), c.op()});
    }
    // Which tracked variable (if any) each insertion step places.  A
    // tracked variable outside `variables` would never be placed, leaving
    // its axioms undecidable by position.
    insertion_var_.assign(variables_.size(), kNotTracked);
    for (size_t i = 0; i < variables_.size(); ++i) {
      const auto it = var_ids_.find(variables_[i]);
      if (it != var_ids_.end()) insertion_var_[i] = it->second;
    }
    {
      std::vector<bool> placed_ever(var_block_.size(), false);
      for (const int slot : insertion_var_) {
        if (slot != kNotTracked) placed_ever[slot] = true;
      }
      for (size_t s = 0; s < placed_ever.size(); ++s) {
        if (!placed_ever[s]) incomplete_ = true;
      }
    }
    if (incomplete_) return;  // Fallback path; nothing below applies.

    // Transitive closure over terms (tracked variables, then constants).
    // rel[i][j]: 0 none, 1 `i <= j`, 2 `i < j`.  kEq contributes both
    // directions; kNe is not transitive and stays a direct check.
    const int v = static_cast<int>(var_block_.size());
    const int t = v + static_cast<int>(sorted_constants.size());
    std::vector<uint8_t> rel(static_cast<size_t>(t) * t, 0);
    auto at = [&rel, t](int i, int j) -> uint8_t& { return rel[i * t + j]; };
    auto seed = [&](int i, int j, uint8_t strength) {
      if (at(i, j) < strength) at(i, j) = strength;
    };
    auto term_id = [v](const Side& s) { return s.is_var ? s.slot : v + s.slot; };
    std::vector<PositionalCheck> ne_checks;
    for (const RawAxiom& a : raw) {
      const int i = term_id(a.lhs);
      const int j = term_id(a.rhs);
      switch (a.op) {
        case CompOp::kLt: seed(i, j, 2); break;
        case CompOp::kLe: seed(i, j, 1); break;
        case CompOp::kEq: seed(i, j, 1); seed(j, i, 1); break;
        case CompOp::kGe: seed(j, i, 1); break;
        case CompOp::kGt: seed(j, i, 2); break;
        case CompOp::kNe:
          if (i == j) {
            impossible_ = true;  // X != X or c != c.
            return;
          }
          ne_checks.push_back(
              {a.lhs.is_var, a.rhs.is_var, a.lhs.slot, a.rhs.slot, CheckOp::kNe});
          break;
      }
    }
    // The constants' own order is part of every total order.
    for (int i = 0; i + 1 < static_cast<int>(sorted_constants.size()); ++i) {
      seed(v + i, v + i + 1, 2);
    }
    for (int k = 0; k < t; ++k) {
      for (int i = 0; i < t; ++i) {
        if (at(i, k) == 0) continue;
        for (int j = 0; j < t; ++j) {
          if (at(k, j) == 0) continue;
          seed(i, j, std::max(at(i, k), at(k, j)) == 2 ? 2 : 1);
        }
      }
    }
    for (int i = 0; i < t; ++i) {
      if (at(i, i) == 2) {
        impossible_ = true;  // Axioms imply x < x: no satisfying order.
        return;
      }
    }
    // Closure constraints between two constants are decided now (their
    // block positions are fixed); the rest become positional checks.
    for (int i = 0; i < t; ++i) {
      for (int j = 0; j < t; ++j) {
        if (i == j || at(i, j) == 0) continue;
        const bool strict = at(i, j) == 2;
        if (i >= v && j >= v) {
          const int ci = i - v;
          const int cj = j - v;
          if (strict ? !(ci < cj) : !(ci <= cj)) {
            impossible_ = true;
            return;
          }
          continue;
        }
        checks_.push_back({i < v, j < v, i < v ? i : i - v, j < v ? j : j - v,
                           strict ? CheckOp::kLt : CheckOp::kLe});
      }
    }
    checks_.insert(checks_.end(), ne_checks.begin(), ne_checks.end());
    // Per-variable incident check lists: a check fires when its last
    // variable endpoint is placed.
    incident_.resize(v);
    for (size_t idx = 0; idx < checks_.size(); ++idx) {
      const PositionalCheck& c = checks_[idx];
      if (c.lhs_is_var) incident_[c.lhs].push_back(static_cast<int>(idx));
      if (c.rhs_is_var && !(c.lhs_is_var && c.lhs == c.rhs)) {
        incident_[c.rhs].push_back(static_cast<int>(idx));
      }
    }
    // Constant blocks start at positions 0..k-1 of the base order and
    // shift as variable blocks open before them.
    const_block_.resize(sorted_constants.size());
    for (size_t i = 0; i < sorted_constants.size(); ++i) {
      const_block_[i] = static_cast<int>(i);
    }
    // Symmetry groups: keep members that are enumerated here and carry no
    // axiom (tracked members would make orbit outcomes diverge).
    insertion_group_.assign(variables_.size(), kNoGroup);
    for (const std::vector<std::string>& group : symmetry.groups) {
      std::vector<size_t> steps;
      for (size_t i = 0; i < variables_.size(); ++i) {
        if (insertion_var_[i] != kNotTracked) continue;
        if (std::find(group.begin(), group.end(), variables_[i]) !=
            group.end()) {
          steps.push_back(i);
        }
      }
      if (steps.size() < 2) continue;
      const int gid = static_cast<int>(group_stack_.size());
      for (const size_t step : steps) insertion_group_[step] = gid;
      group_stack_.emplace_back();
    }
  }

  /// All positional checks incident to `slot` whose endpoints are both
  /// placed.  Called with `slot` freshly placed, so each axiom is
  /// evaluated exactly when it becomes decidable.
  bool PlacementOk(int slot) const {
    for (const int idx : incident_[slot]) {
      const PositionalCheck& c = checks_[idx];
      const int i = c.lhs_is_var ? var_block_[c.lhs] : const_block_[c.lhs];
      if (i == kUnplaced) continue;
      const int j = c.rhs_is_var ? var_block_[c.rhs] : const_block_[c.rhs];
      if (j == kUnplaced) continue;
      bool ok = false;
      switch (c.op) {
        case CheckOp::kLt: ok = i < j; break;
        case CheckOp::kLe: ok = i <= j; break;
        case CheckOp::kNe: ok = i != j; break;
      }
      if (!ok) return false;
    }
    return true;
  }

  /// Orbit size of the current complete placement: per group, the
  /// multinomial coefficient of its per-block occupancy counts.
  int64_t Multiplicity() const {
    int64_t m = 1;
    for (const std::vector<int>& stack : group_stack_) {
      if (stack.size() < 2) continue;
      int64_t cum = 0;
      size_t i = 0;
      while (i < stack.size()) {
        size_t j = i;
        while (j < stack.size() && stack[j] == stack[i]) ++j;
        const int64_t run = static_cast<int64_t>(j - i);
        cum += run;
        m = SatMul(m, Binomial(cum, run));
        i = j;
      }
    }
    return m;
  }

  bool Insert(size_t next, TotalOrder* order,
              const std::function<bool(const TotalOrder&, int64_t)>& fn) {
    if (next == variables_.size()) {
      const int64_t mult = Multiplicity();
      ++stats_->orders_emitted;
      stats_->orders_weighted += mult;
      return fn(*order, mult);
    }
    const std::string& var = variables_[next];
    const int tracked = insertion_var_[next];
    const int gid = insertion_group_[next];
    const int prev = gid != kNoGroup && !group_stack_[gid].empty()
                         ? group_stack_[gid].back()
                         : kUnplaced;
    // Option 1: join an existing block.  Canonical representatives place
    // group members at nondecreasing positions, so blocks before the
    // group's previous member are skipped wholesale.
    size_t b = 0;
    if (prev != kUnplaced) {
      b = static_cast<size_t>(prev);
      stats_->nodes_symmetry_skipped += prev;
    }
    for (; b < order->blocks.size(); ++b) {
      if (tracked != kNotTracked) {
        var_block_[tracked] = static_cast<int>(b);
        if (!PlacementOk(tracked)) {
          var_block_[tracked] = kUnplaced;
          ++stats_->nodes_pruned;
          continue;
        }
      }
      order->blocks[b].variables.push_back(var);
      if (gid != kNoGroup) group_stack_[gid].push_back(static_cast<int>(b));
      ++stats_->nodes_visited;
      const bool keep_going = Insert(next + 1, order, fn);
      if (gid != kNoGroup) group_stack_[gid].pop_back();
      order->blocks[b].variables.pop_back();
      if (tracked != kNotTracked) var_block_[tracked] = kUnplaced;
      if (!keep_going) return false;
    }
    // Option 2: open a new block in a gap (strictly after the group's
    // previous member: the new singleton block must not precede it).
    OrderBlock fresh;
    fresh.variables.push_back(var);
    size_t gap = 0;
    if (prev != kUnplaced) {
      gap = static_cast<size_t>(prev) + 1;
      stats_->nodes_symmetry_skipped += prev + 1;
    }
    for (; gap <= order->blocks.size(); ++gap) {
      ShiftUp(static_cast<int>(gap));
      if (tracked != kNotTracked) {
        var_block_[tracked] = static_cast<int>(gap);
        if (!PlacementOk(tracked)) {
          var_block_[tracked] = kUnplaced;
          ShiftDown(static_cast<int>(gap));
          ++stats_->nodes_pruned;
          continue;
        }
      }
      order->blocks.insert(order->blocks.begin() + gap, fresh);
      if (gid != kNoGroup) group_stack_[gid].push_back(static_cast<int>(gap));
      ++stats_->nodes_visited;
      const bool keep_going = Insert(next + 1, order, fn);
      if (gid != kNoGroup) group_stack_[gid].pop_back();
      order->blocks.erase(order->blocks.begin() + gap);
      if (tracked != kNotTracked) var_block_[tracked] = kUnplaced;
      ShiftDown(static_cast<int>(gap));
      if (!keep_going) return false;
    }
    return true;
  }

  /// Reference behavior for axioms the positional encoding cannot
  /// represent: solver-based prefix pruning, solver-verified leaves, no
  /// symmetry reduction (multiplicity 1).
  bool InsertFallback(size_t next, TotalOrder* order,
                      const std::function<bool(const TotalOrder&, int64_t)>& fn) {
    combined_ = axioms_;
    const std::vector<Comparison> placed = order->ToComparisons();
    combined_.insert(combined_.end(), placed.begin(), placed.end());
    if (!AcSolver::IsSatisfiable(combined_)) {
      ++stats_->nodes_pruned;
      return true;
    }
    ++stats_->nodes_visited;
    if (next == variables_.size()) {
      if (!AcSolver::SatisfiedBy(axioms_, order->ToAssignment())) return true;
      ++stats_->orders_emitted;
      ++stats_->orders_weighted;
      return fn(*order, 1);
    }
    const std::string& var = variables_[next];
    for (size_t b = 0; b < order->blocks.size(); ++b) {
      order->blocks[b].variables.push_back(var);
      const bool keep_going = InsertFallback(next + 1, order, fn);
      order->blocks[b].variables.pop_back();
      if (!keep_going) return false;
    }
    OrderBlock fresh;
    fresh.variables.push_back(var);
    for (size_t gap = 0; gap <= order->blocks.size(); ++gap) {
      order->blocks.insert(order->blocks.begin() + gap, fresh);
      const bool keep_going = InsertFallback(next + 1, order, fn);
      order->blocks.erase(order->blocks.begin() + gap);
      if (!keep_going) return false;
    }
    return true;
  }

  /// A new block opened at `gap`: every tracked placement at or after it
  /// moves up one position.  (kUnplaced is negative, so it never shifts.)
  void ShiftUp(int gap) {
    for (int& b : var_block_) {
      if (b >= gap) ++b;
    }
    for (int& b : const_block_) {
      if (b >= gap) ++b;
    }
    for (std::vector<int>& stack : group_stack_) {
      for (int& b : stack) {
        if (b >= gap) ++b;
      }
    }
  }

  /// Inverse of ShiftUp after the block at `gap` is removed.
  void ShiftDown(int gap) {
    for (int& b : var_block_) {
      if (b > gap) --b;
    }
    for (int& b : const_block_) {
      if (b > gap) --b;
    }
    for (std::vector<int>& stack : group_stack_) {
      for (int& b : stack) {
        if (b > gap) --b;
      }
    }
  }

  const std::vector<std::string>& variables_;
  const std::vector<Comparison>& axioms_;
  OrderEnumerationStats* stats_;
  std::map<std::string, int> var_ids_;
  std::vector<PositionalCheck> checks_;
  std::vector<std::vector<int>> incident_;  // tracked variable -> check idxs
  std::vector<int> var_block_;    // tracked variable -> block, or kUnplaced
  std::vector<int> const_block_;  // constant slot -> block (always placed)
  std::vector<int> insertion_var_;
  std::vector<int> insertion_group_;  // insertion step -> group, or kNoGroup
  std::vector<std::vector<int>> group_stack_;  // placed members' positions
  bool incomplete_ = false;
  bool impossible_ = false;
  std::vector<Comparison> combined_;
};

}  // namespace

void ForEachSatisfyingOrderPruned(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants,
    const std::vector<Comparison>& axioms, const OrderSymmetry& symmetry,
    const std::function<bool(const TotalOrder&, int64_t)>& fn,
    OrderEnumerationStats* stats) {
  OrderEnumerationStats local;
  if (stats == nullptr) stats = &local;
  if (internal::SatisfyingOrderFallbackForcedForTest()) {
    internal::ForEachSatisfyingOrderLegacy(
        variables, constants, axioms,
        [&fn](const TotalOrder& order) { return fn(order, 1); }, stats);
    return;
  }
  const std::vector<Rational> sorted_constants =
      SortedUniqueConstants(constants);
  TotalOrder base = BaseOrder(sorted_constants);
  PrunedOrderEnumerator(variables, sorted_constants, axioms, symmetry, stats)
      .Run(&base, fn);
}

void ForEachSatisfyingOrder(const std::vector<std::string>& variables,
                            const std::vector<Rational>& constants,
                            const std::vector<Comparison>& axioms,
                            const std::function<bool(const TotalOrder&)>& fn) {
  ForEachSatisfyingOrderPruned(
      variables, constants, axioms, OrderSymmetry{},
      [&fn](const TotalOrder& order, int64_t) { return fn(order); });
}

std::vector<std::vector<std::string>> InterchangeableVariableGroups(
    const ConjunctiveQuery& query) {
  // Candidates: body variables that appear in neither the head nor any
  // comparison.  (A head or comparison occurrence makes a swap observable.)
  std::set<std::string> excluded;
  for (const Term& t : query.head().args()) {
    if (t.IsVariable()) excluded.insert(t.name());
  }
  for (const Comparison& c : query.comparisons()) {
    if (c.lhs().IsVariable()) excluded.insert(c.lhs().name());
    if (c.rhs().IsVariable()) excluded.insert(c.rhs().name());
  }
  std::vector<std::string> candidates;
  for (const std::string& v : query.BodyVariables()) {
    if (excluded.find(v) == excluded.end()) candidates.push_back(v);
  }
  if (candidates.size() < 2) return {};

  auto body_strings = [&query](const std::string* u, const std::string* v) {
    std::vector<std::string> atoms;
    atoms.reserve(query.body().size());
    for (const Atom& a : query.body()) {
      std::vector<Term> args;
      args.reserve(a.args().size());
      for (const Term& t : a.args()) {
        if (u != nullptr && t.IsVariable() && t.name() == *u) {
          args.push_back(Term::Variable(*v));
        } else if (u != nullptr && t.IsVariable() && t.name() == *v) {
          args.push_back(Term::Variable(*u));
        } else {
          args.push_back(t);
        }
      }
      atoms.push_back(Atom(a.predicate(), std::move(args)).ToString());
    }
    std::sort(atoms.begin(), atoms.end());
    return atoms;
  };
  const std::vector<std::string> base = body_strings(nullptr, nullptr);

  // Union-find over candidates: transpositions compose, so pairwise swap
  // invariance extends to every permutation within a class.
  std::vector<int> parent(candidates.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      if (find(static_cast<int>(i)) == find(static_cast<int>(j))) continue;
      if (body_strings(&candidates[i], &candidates[j]) == base) {
        parent[find(static_cast<int>(i))] = find(static_cast<int>(j));
      }
    }
  }
  std::map<int, std::vector<std::string>> classes;
  for (size_t i = 0; i < candidates.size(); ++i) {
    classes[find(static_cast<int>(i))].push_back(candidates[i]);
  }
  std::vector<std::vector<std::string>> groups;
  for (auto& [root, members] : classes) {
    if (members.size() >= 2) groups.push_back(std::move(members));
  }
  // Deterministic group order: by first member (members are already in
  // BodyVariables order).
  std::sort(groups.begin(), groups.end());
  return groups;
}

namespace internal {

namespace {
std::atomic<bool> g_force_order_fallback{false};
}  // namespace

void ForceSatisfyingOrderFallbackForTest(bool forced) {
  g_force_order_fallback.store(forced, std::memory_order_relaxed);
}

bool SatisfyingOrderFallbackForcedForTest() {
  return g_force_order_fallback.load(std::memory_order_relaxed);
}

void ForEachSatisfyingOrderLegacy(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants,
    const std::vector<Comparison>& axioms,
    const std::function<bool(const TotalOrder&)>& fn,
    OrderEnumerationStats* stats) {
  OrderEnumerationStats local;
  if (stats == nullptr) stats = &local;
  const std::vector<Rational> sorted_constants =
      SortedUniqueConstants(constants);
  TotalOrder base = BaseOrder(sorted_constants);
  std::function<bool(size_t, TotalOrder*)> insert = [&](size_t next,
                                                        TotalOrder* order) {
    ++stats->nodes_visited;
    if (next == variables.size()) {
      if (!AcSolver::SatisfiedBy(axioms, order->ToAssignment())) return true;
      ++stats->orders_emitted;
      ++stats->orders_weighted;
      return fn(*order);
    }
    const std::string& var = variables[next];
    for (size_t b = 0; b < order->blocks.size(); ++b) {
      order->blocks[b].variables.push_back(var);
      const bool keep_going = insert(next + 1, order);
      order->blocks[b].variables.pop_back();
      if (!keep_going) return false;
    }
    OrderBlock fresh;
    fresh.variables.push_back(var);
    for (size_t gap = 0; gap <= order->blocks.size(); ++gap) {
      order->blocks.insert(order->blocks.begin() + gap, fresh);
      const bool keep_going = insert(next + 1, order);
      order->blocks.erase(order->blocks.begin() + gap);
      if (!keep_going) return false;
    }
    return true;
  };
  insert(0, &base);
}

}  // namespace internal

int64_t CountTotalOrders(int num_variables) {
  if (num_variables < 0) return 0;
  // Fubini numbers: a(n) = sum_{k=1..n} C(n,k) a(n-k), a(0) = 1.
  std::vector<int64_t> a(num_variables + 1, 0);
  a[0] = 1;
  for (int n = 1; n <= num_variables; ++n) {
    // Binomial row C(n, k) computed incrementally.
    int64_t binom = 1;
    int64_t total = 0;
    for (int k = 1; k <= n; ++k) {
      binom = binom * (n - k + 1) / k;
      const int64_t term = binom * a[n - k];
      if (term < 0 || total > std::numeric_limits<int64_t>::max() - term) {
        return std::numeric_limits<int64_t>::max();
      }
      total += term;
    }
    a[n] = total;
  }
  return a[num_variables];
}

}  // namespace cqac
