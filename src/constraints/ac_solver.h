#ifndef CQAC_CONSTRAINTS_AC_SOLVER_H_
#define CQAC_CONSTRAINTS_AC_SOLVER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/comparison.h"
#include "ast/substitution.h"
#include "ast/term.h"
#include "ast/value.h"

namespace cqac {

/// Decision procedures for conjunctions of arithmetic comparisons
/// (`<, <=, =, !=, >=, >`) over variables and rational constants, with the
/// paper's semantics: values range over an infinite, totally and *densely*
/// ordered set without endpoints (the rationals).
///
/// The satisfiability test builds the directed "less-or-equal" graph whose
/// edges are the `<=`-consequences of each comparison (`a = b` contributes
/// both directions, `a < b` contributes a strict edge) plus the implicit
/// order edges between the constants that occur.  A conjunction is
/// satisfiable over a dense unbounded order iff no strongly connected
/// component of that graph contains a strict edge or both endpoints of a
/// `!=` constraint: the condensation can then be linearized and assigned
/// strictly increasing rationals (constants keep their own values; density
/// supplies fresh values between adjacent constants, unboundedness supplies
/// them at the ends).
///
/// All other services (implication, forced equalities, consistency of a
/// total order) reduce to satisfiability by refutation.
class AcSolver {
 public:
  /// True iff some assignment of rationals to the variables satisfies every
  /// comparison.  The empty conjunction is satisfiable.
  static bool IsSatisfiable(const std::vector<Comparison>& comparisons);

  /// True iff every assignment satisfying `axioms` also satisfies
  /// `conclusion` (refutation: `axioms && !conclusion` unsatisfiable).
  /// Vacuously true when `axioms` is unsatisfiable.
  static bool Implies(const std::vector<Comparison>& axioms,
                      const Comparison& conclusion);

  /// True iff `axioms` implies every element of `conclusions`.
  static bool ImpliesAll(const std::vector<Comparison>& axioms,
                         const std::vector<Comparison>& conclusions);

  /// True iff the two conjunctions imply each other (logical equivalence).
  static bool Equivalent(const std::vector<Comparison>& a,
                         const std::vector<Comparison>& b);

  /// The strongest operator `op` such that `axioms` implies `lhs op rhs`,
  /// or nullopt when neither `<=`, `>=` nor `!=` is implied.  Preference
  /// order: `=`, `<`, `>`, `<=`, `>=`, `!=`.
  static std::optional<CompOp> ImpliedRelation(
      const std::vector<Comparison>& axioms, const Term& lhs, const Term& rhs);

  /// A substitution that maps each variable forced equal to a constant to
  /// that constant, and collapses every class of variables forced equal to
  /// one representative (the lexicographically least variable of the
  /// class).  Requires `comparisons` satisfiable; returns nullopt otherwise.
  static std::optional<Substitution> ForcedEqualities(
      const std::vector<Comparison>& comparisons);

  /// Evaluates the conjunction under a concrete assignment.  Variables
  /// missing from `assignment` make the result false.
  static bool SatisfiedBy(const std::vector<Comparison>& comparisons,
                          const std::map<std::string, Rational>& assignment);

  /// Removes comparisons that are implied by the remaining ones (including
  /// constant-only tautologies such as `3 < 5`), preserving logical
  /// equivalence.  Requires a satisfiable input to be meaningful; an
  /// unsatisfiable input is returned unchanged.
  static std::vector<Comparison> RemoveRedundant(
      std::vector<Comparison> comparisons);
};

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_AC_SOLVER_H_
