#include "constraints/inequality_graph.h"

#include <algorithm>
#include <deque>

namespace cqac {

InequalityGraph::InequalityGraph(const std::vector<Comparison>& comparisons) {
  for (const Comparison& raw : comparisons) {
    // Normalize so the operator points "upward" (<, <=, or =).
    Comparison c = raw;
    if (c.op() == CompOp::kGt || c.op() == CompOp::kGe) c = c.Flipped();
    if (c.op() == CompOp::kNe) continue;  // Not part of the order graph.
    const int u = NodeFor(c.lhs());
    const int v = NodeFor(c.rhs());
    switch (c.op()) {
      case CompOp::kLt:
        adjacency_[u].push_back({v, true});
        reverse_adjacency_[v].push_back({u, true});
        break;
      case CompOp::kLe:
        adjacency_[u].push_back({v, false});
        reverse_adjacency_[v].push_back({u, false});
        break;
      case CompOp::kEq:
        adjacency_[u].push_back({v, false});
        reverse_adjacency_[v].push_back({u, false});
        adjacency_[v].push_back({u, false});
        reverse_adjacency_[u].push_back({v, false});
        break;
      default:
        break;
    }
  }
  // Implicit order between occurring constants, ascending.
  std::vector<std::pair<Rational, int>> consts;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].IsConstant()) consts.push_back({nodes_[i].value(), (int)i});
  }
  std::sort(consts.begin(), consts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i + 1 < consts.size(); ++i) {
    adjacency_[consts[i].second].push_back({consts[i + 1].second, true});
    reverse_adjacency_[consts[i + 1].second].push_back(
        {consts[i].second, true});
  }
}

int InequalityGraph::NodeFor(const Term& t) {
  const int found = FindNode(t);
  if (found >= 0) return found;
  nodes_.push_back(t);
  adjacency_.emplace_back();
  reverse_adjacency_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

int InequalityGraph::FindNode(const Term& t) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == t) return static_cast<int>(i);
  }
  return -1;
}

std::vector<bool> InequalityGraph::Reach(
    int from, bool leq_edges_only, const std::vector<bool>& blocked) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<int> frontier;
  seen[from] = true;
  frontier.push_back(from);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    // Expansion through a blocked node is forbidden (it may still be
    // *reached*; it just cannot be an intermediate node).
    if (u != from && !blocked.empty() && blocked[u]) continue;
    for (const auto& [v, strict] : adjacency_[u]) {
      if (leq_edges_only && strict) continue;
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
      }
    }
  }
  return seen;
}

std::vector<std::string> InequalityGraph::DirectedSet(
    const std::string& x, const std::vector<std::string>& distinguished,
    bool toward_x) const {
  std::vector<std::string> result;
  const int x_node = FindNode(Term::Variable(x));
  if (x_node < 0) return result;

  std::vector<bool> dist_mask(nodes_.size(), false);
  for (const std::string& d : distinguished) {
    const int n = FindNode(Term::Variable(d));
    if (n >= 0) dist_mask[n] = true;
  }

  // Work in a view of the graph where, for the geq-set, all edges are
  // conceptually reversed so that "a path from Y to X" means X <= ... <= Y.
  const auto& fwd = toward_x ? adjacency_ : reverse_adjacency_;

  for (const std::string& y : distinguished) {
    if (y == x) continue;
    const int y_node = FindNode(Term::Variable(y));
    if (y_node < 0) continue;

    // (a) Some pure-<= path from y to x avoiding other distinguished
    // intermediates.  BFS in `fwd` from y over non-strict edges; blocked
    // through-nodes are distinguished variables other than y and the
    // endpoint x.
    std::vector<bool> blocked = dist_mask;
    blocked[y_node] = false;
    blocked[x_node] = false;
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<int> frontier;
    seen[y_node] = true;
    frontier.push_back(y_node);
    bool pure_path = false;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop_front();
      if (u == x_node) {
        pure_path = true;
        continue;  // Reached, but do not expand through x.
      }
      if (u != y_node && blocked[u]) continue;
      for (const auto& [v, strict] : fwd[u]) {
        if (strict) continue;
        if (!seen[v]) {
          seen[v] = true;
          frontier.push_back(v);
        }
      }
    }
    if (!pure_path) continue;

    // (b) No path from y to x may contain a strict edge or another
    // distinguished variable.  A strict edge (u, v) on some y->x path
    // exists iff y reaches u and v reaches x (both in `fwd`).
    std::vector<bool> no_block;
    std::vector<bool> from_y(nodes_.size(), false);
    {
      std::deque<int> q;
      from_y[y_node] = true;
      q.push_back(y_node);
      while (!q.empty()) {
        const int u = q.front();
        q.pop_front();
        for (const auto& [v, strict] : fwd[u]) {
          (void)strict;
          if (!from_y[v]) {
            from_y[v] = true;
            q.push_back(v);
          }
        }
      }
    }
    std::vector<bool> to_x(nodes_.size(), false);
    {
      const auto& bwd = toward_x ? reverse_adjacency_ : adjacency_;
      std::deque<int> q;
      to_x[x_node] = true;
      q.push_back(x_node);
      while (!q.empty()) {
        const int u = q.front();
        q.pop_front();
        for (const auto& [v, strict] : bwd[u]) {
          (void)strict;
          if (!to_x[v]) {
            to_x[v] = true;
            q.push_back(v);
          }
        }
      }
    }
    bool violated = false;
    for (size_t u = 0; u < nodes_.size() && !violated; ++u) {
      if (!from_y[u]) continue;
      for (const auto& [v, strict] : fwd[u]) {
        if (strict && to_x[v]) {
          violated = true;
          break;
        }
      }
    }
    // Another distinguished variable on some y->x path.
    for (size_t u = 0; u < nodes_.size() && !violated; ++u) {
      if (dist_mask[u] && static_cast<int>(u) != y_node &&
          static_cast<int>(u) != x_node && from_y[u] && to_x[u]) {
        violated = true;
      }
    }
    if (!violated) result.push_back(y);
  }
  return result;
}

std::vector<std::string> InequalityGraph::LeqSet(
    const std::string& x, const std::vector<std::string>& distinguished) const {
  return DirectedSet(x, distinguished, /*toward_x=*/true);
}

std::vector<std::string> InequalityGraph::GeqSet(
    const std::string& x, const std::vector<std::string>& distinguished) const {
  return DirectedSet(x, distinguished, /*toward_x=*/false);
}

bool InequalityGraph::IsExportable(
    const std::string& x, const std::vector<std::string>& distinguished) const {
  return !LeqSet(x, distinguished).empty() &&
         !GeqSet(x, distinguished).empty();
}

bool InequalityGraph::ImpliesLeq(const Term& a, const Term& b) const {
  const int u = FindNode(a);
  const int v = FindNode(b);
  if (u < 0 || v < 0) return a == b;
  if (u == v) return true;
  const std::vector<bool> seen = Reach(u, /*leq_edges_only=*/false, {});
  return seen[v];
}

bool InequalityGraph::ImpliesLt(const Term& a, const Term& b) const {
  const int u = FindNode(a);
  const int v = FindNode(b);
  if (u < 0 || v < 0) return false;
  const std::vector<bool> from_a = Reach(u, /*leq_edges_only=*/false, {});
  // A strict edge (s, t) with a ->* s and t ->* b witnesses a < b.
  for (size_t s = 0; s < nodes_.size(); ++s) {
    if (!from_a[s]) continue;
    for (const auto& [t, strict] : adjacency_[s]) {
      if (!strict) continue;
      const std::vector<bool> from_t = Reach(t, /*leq_edges_only=*/false, {});
      if (from_t[v]) return true;
    }
  }
  return false;
}

}  // namespace cqac
