#ifndef CQAC_CONSTRAINTS_ORDERS_H_
#define CQAC_CONSTRAINTS_ORDERS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/comparison.h"
#include "ast/term.h"
#include "ast/value.h"

namespace cqac {

/// One equivalence class of a total order: a set of variables, plus at most
/// one constant, that all take the same value.
struct OrderBlock {
  std::vector<std::string> variables;
  std::optional<Rational> constant;

  /// A term denoting the block's value: the constant when present,
  /// otherwise the first variable.
  Term Representative() const;
};

/// A total (pre)order over a set of variables interleaved with a fixed set
/// of constants: a sequence of blocks with strictly increasing values.
/// This is the paper's "partition + total order of its members" object from
/// the canonical-database containment test (Section 2.3).
struct TotalOrder {
  std::vector<OrderBlock> blocks;

  /// A concrete witness assignment: blocks holding a constant get that
  /// constant's value; the others get rationals strictly between their
  /// neighbors' values (density), or beyond the extremes (unboundedness).
  std::map<std::string, Rational> ToAssignment() const;

  /// The per-block values underlying ToAssignment, written into `values`
  /// (resized to blocks.size()).  Values are strictly increasing across
  /// blocks.  This is the allocation-light form used by canonical-database
  /// freezing; ToAssignment is a map-building wrapper around it.
  void BlockValues(std::vector<Rational>* values) const;

  /// The order as a conjunction of comparisons: equalities within each
  /// block and `<` between representatives of adjacent blocks.
  std::vector<Comparison> ToComparisons() const;

  /// The order restricted to `keep_vars` (constants are always kept):
  /// equalities among surviving members and `<` between adjacent surviving
  /// blocks.  Comparisons between two constants are omitted as tautologies.
  std::vector<Comparison> ProjectedComparisons(
      const std::vector<std::string>& keep_vars) const;

  /// Renders as e.g. `X = Y < 3 < Z`.
  std::string ToString() const;
};

/// Invokes `fn` once for every total order of `variables` interleaved with
/// `constants` (which must be duplicate-free; they are sorted internally).
/// Distinct constants never share a block and always appear in ascending
/// order.  Enumeration stops early when `fn` returns false.
///
/// The number of orders grows like the ordered Bell numbers (1, 3, 13, 75,
/// 541, 4683, 47293, ... for 1..7 variables with no constants), which is
/// the source of the algorithm's exponential behavior in the number of
/// distinct variables and constants — exactly the growth the paper's
/// Figure 4 plots.
void ForEachTotalOrder(const std::vector<std::string>& variables,
                       const std::vector<Rational>& constants,
                       const std::function<bool(const TotalOrder&)>& fn);

/// Materializes all total orders.  Convenient for tests; prefer
/// ForEachTotalOrder in algorithmic code.
std::vector<TotalOrder> EnumerateTotalOrders(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants);

/// Like ForEachTotalOrder, but only visits orders whose witness assignment
/// satisfies `axioms`, pruning inconsistent prefixes during construction:
/// a partial placement whose order constraints already contradict the
/// axioms can never extend to a satisfying order.  When the axioms chain
/// most variables (e.g. the expanded Pre-Rewritings of Phase 2, which
/// carry a full total order over the query's variables), this visits a
/// tiny fraction of the ordered-Bell-many orders.
///
/// `constants` must include every constant occurring in `axioms`;
/// otherwise an axiom's truth is not determined by the order and the
/// enumeration may miss satisfying orders.
void ForEachSatisfyingOrder(const std::vector<std::string>& variables,
                            const std::vector<Rational>& constants,
                            const std::vector<Comparison>& axioms,
                            const std::function<bool(const TotalOrder&)>& fn);

/// The number of total orders of `num_variables` variables with no
/// constants (ordered Bell / Fubini number).  Saturates at INT64_MAX.
int64_t CountTotalOrders(int num_variables);

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_ORDERS_H_
