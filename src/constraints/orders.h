#ifndef CQAC_CONSTRAINTS_ORDERS_H_
#define CQAC_CONSTRAINTS_ORDERS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/comparison.h"
#include "ast/query.h"
#include "ast/term.h"
#include "ast/value.h"

namespace cqac {

/// One equivalence class of a total order: a set of variables, plus at most
/// one constant, that all take the same value.
struct OrderBlock {
  std::vector<std::string> variables;
  std::optional<Rational> constant;

  /// A term denoting the block's value: the constant when present,
  /// otherwise the first variable.
  Term Representative() const;
};

/// A total (pre)order over a set of variables interleaved with a fixed set
/// of constants: a sequence of blocks with strictly increasing values.
/// This is the paper's "partition + total order of its members" object from
/// the canonical-database containment test (Section 2.3).
struct TotalOrder {
  std::vector<OrderBlock> blocks;

  /// A concrete witness assignment: blocks holding a constant get that
  /// constant's value; the others get rationals strictly between their
  /// neighbors' values (density), or beyond the extremes (unboundedness).
  std::map<std::string, Rational> ToAssignment() const;

  /// The per-block values underlying ToAssignment, written into `values`
  /// (resized to blocks.size()).  Values are strictly increasing across
  /// blocks.  This is the allocation-light form used by canonical-database
  /// freezing; ToAssignment is a map-building wrapper around it.
  void BlockValues(std::vector<Rational>* values) const;

  /// The order as a conjunction of comparisons: equalities within each
  /// block and `<` between representatives of adjacent blocks.
  std::vector<Comparison> ToComparisons() const;

  /// The order restricted to `keep_vars` (constants are always kept):
  /// equalities among surviving members and `<` between adjacent surviving
  /// blocks.  Comparisons between two constants are omitted as tautologies.
  std::vector<Comparison> ProjectedComparisons(
      const std::vector<std::string>& keep_vars) const;

  /// Renders as e.g. `X = Y < 3 < Z`.
  std::string ToString() const;
};

/// Invokes `fn` once for every total order of `variables` interleaved with
/// `constants` (which must be duplicate-free; they are sorted internally).
/// Distinct constants never share a block and always appear in ascending
/// order.  Enumeration stops early when `fn` returns false.
///
/// The number of orders grows like the ordered Bell numbers (1, 3, 13, 75,
/// 541, 4683, 47293, ... for 1..7 variables with no constants), which is
/// the source of the algorithm's exponential behavior in the number of
/// distinct variables and constants — exactly the growth the paper's
/// Figure 4 plots.
void ForEachTotalOrder(const std::vector<std::string>& variables,
                       const std::vector<Rational>& constants,
                       const std::function<bool(const TotalOrder&)>& fn);

/// Materializes all total orders.  Convenient for tests; prefer
/// ForEachTotalOrder in algorithmic code.
std::vector<TotalOrder> EnumerateTotalOrders(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants);

/// Like ForEachTotalOrder, but only visits orders whose witness assignment
/// satisfies `axioms`, pruning inconsistent prefixes during construction:
/// a partial placement whose order constraints already contradict the
/// axioms can never extend to a satisfying order.  When the axioms chain
/// most variables (e.g. the expanded Pre-Rewritings of Phase 2, which
/// carry a full total order over the query's variables), this visits a
/// tiny fraction of the ordered-Bell-many orders.
///
/// `constants` must include every constant occurring in `axioms`;
/// otherwise an axiom's truth is not determined by the order and the
/// enumeration may miss satisfying orders.
void ForEachSatisfyingOrder(const std::vector<std::string>& variables,
                            const std::vector<Rational>& constants,
                            const std::vector<Comparison>& axioms,
                            const std::function<bool(const TotalOrder&)>& fn);

/// Counters for one satisfying-order enumeration.  A "node" is a state of
/// the enumeration tree: the root (constants only) plus every accepted
/// placement of a variable into a partial order.  A candidate placement
/// rejected by an axiom check before recursion counts as pruned; one
/// skipped by the canonical-prefix symmetry restriction counts as
/// symmetry-skipped (its whole subtree is represented by a sibling).
struct OrderEnumerationStats {
  int64_t nodes_visited = 0;
  int64_t nodes_pruned = 0;
  int64_t nodes_symmetry_skipped = 0;
  /// Orders handed to the callback (one canonical representative per
  /// symmetry orbit).
  int64_t orders_emitted = 0;
  /// Sum of the emitted orders' multiplicities: the number of satisfying
  /// orders the naive enumerate-then-filter reference would visit.
  int64_t orders_weighted = 0;
};

/// Disjoint groups of pairwise interchangeable variables: the caller
/// asserts that renaming any group member to any other (a transposition,
/// and hence any permutation within a group) does not change whatever
/// verdict it derives from an order.  Members that also occur in the
/// axioms or outside `variables` are ignored for safety.
struct OrderSymmetry {
  std::vector<std::vector<std::string>> groups;
};

/// The prefix-pruned, symmetry-reduced enumeration tree behind
/// ForEachSatisfyingOrder.
///
/// Each axiom is checked against the *partial* block sequence the moment
/// its second endpoint is placed (a block chain totally orders everything
/// already placed, and later insertions never change the relative order of
/// two placed terms), so a violating subtree is cut at its root instead of
/// being walked and filtered at the leaves.  Axioms are first closed under
/// transitivity (through constants too), which lets the tree also cut
/// placements that only *implied* constraints forbid.
///
/// Orders differing only by a permutation of variables within one
/// `symmetry` group are collapsed to a single canonical representative
/// (group members appear in nondecreasing block position, in group order);
/// `fn` receives the orbit size as `multiplicity`.  With empty `symmetry`,
/// every multiplicity is 1 and the emitted sequence is exactly the
/// ForEachSatisfyingOrder sequence.
///
/// When an axiom mentions a constant outside `constants` or a variable
/// outside `variables`, positional checks cannot decide it; the
/// enumeration falls back to the reference solver-based filter and ignores
/// `symmetry` (every multiplicity is 1).
void ForEachSatisfyingOrderPruned(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants,
    const std::vector<Comparison>& axioms, const OrderSymmetry& symmetry,
    const std::function<bool(const TotalOrder&, int64_t multiplicity)>& fn,
    OrderEnumerationStats* stats = nullptr);

/// Groups of `query` variables that are interchangeable for any
/// order-based verdict: non-head variables that occur in no comparison and
/// whose pairwise swap leaves the body atom multiset unchanged (a
/// structural automorphism).  Swapping two such variables maps every
/// canonical database of `query` to an identical one, so any per-order
/// predicate — head computation by an arbitrary second query included —
/// is constant on each orbit.  Suitable as OrderSymmetry::groups for
/// enumerations over this query's variables.
std::vector<std::vector<std::string>> InterchangeableVariableGroups(
    const ConjunctiveQuery& query);

/// The number of total orders of `num_variables` variables with no
/// constants (ordered Bell / Fubini number).  Saturates at INT64_MAX.
int64_t CountTotalOrders(int num_variables);

namespace internal {

/// The naive enumerate-then-filter reference: walks the full
/// ForEachTotalOrder insertion tree and tests the axioms with the
/// constraint solver at every leaf.  Retained as the differential-testing
/// oracle for ForEachSatisfyingOrderPruned and as the "unpruned" side of
/// bench_phase1's node counts.
void ForEachSatisfyingOrderLegacy(
    const std::vector<std::string>& variables,
    const std::vector<Rational>& constants,
    const std::vector<Comparison>& axioms,
    const std::function<bool(const TotalOrder&)>& fn,
    OrderEnumerationStats* stats = nullptr);

/// Test-only switch: while forced, ForEachSatisfyingOrderPruned routes
/// every enumeration through ForEachSatisfyingOrderLegacy (symmetry
/// ignored, every multiplicity 1).  By the enumerator's contract the
/// emitted satisfying orders are identical either way — only node/orbit
/// counters change — and the differential fuzzer flips this switch to
/// prove it on whole-algorithm outputs.  The flag is a relaxed atomic:
/// flip it only while no enumeration is in flight.
void ForceSatisfyingOrderFallbackForTest(bool forced);
bool SatisfyingOrderFallbackForcedForTest();

}  // namespace internal

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_ORDERS_H_
