#ifndef CQAC_CONSTRAINTS_INEQUALITY_GRAPH_H_
#define CQAC_CONSTRAINTS_INEQUALITY_GRAPH_H_

#include <string>
#include <vector>

#include "ast/comparison.h"
#include "ast/term.h"

namespace cqac {

/// The inequality graph `G(V)` of a set of arithmetic comparisons (Klug;
/// Definition 3 of the paper): one node per variable or constant, an edge
/// labeled `<` or `<=` from `A` to `B` for each comparison implying
/// `A < B` or `A <= B` (`A = B` contributes `<=` edges in both
/// directions).  A path from `A` to `C` witnesses `A <= C`; a path with a
/// `<`-labeled edge witnesses `A < C`.
///
/// Its primary use is Definition 4 / Lemma 1: a nondistinguished view
/// variable `X` is *exportable* iff both its leq-set and geq-set are
/// nonempty, in which case a head homomorphism equating a member of each
/// forces `X` equal to a distinguished variable.
class InequalityGraph {
 public:
  explicit InequalityGraph(const std::vector<Comparison>& comparisons);

  /// The paper's `S<=(V, X)`: distinguished variables `Y` such that (a)
  /// some path from `Y` to `X` uses only `<=`-labeled edges and passes
  /// through no other distinguished variable, and (b) no path from `Y` to
  /// `X` contains a `<`-labeled edge or another distinguished variable.
  std::vector<std::string> LeqSet(
      const std::string& x,
      const std::vector<std::string>& distinguished) const;

  /// The paper's `S>=(V, X)`, symmetric to LeqSet.
  std::vector<std::string> GeqSet(
      const std::string& x,
      const std::vector<std::string>& distinguished) const;

  /// Lemma 1: `x` is exportable iff both LeqSet and GeqSet are nonempty.
  bool IsExportable(const std::string& x,
                    const std::vector<std::string>& distinguished) const;

  /// True when the graph contains a (possibly empty) path from `a` to `b`,
  /// i.e. the comparisons imply `a <= b`.
  bool ImpliesLeq(const Term& a, const Term& b) const;

  /// True when some path from `a` to `b` contains a `<`-labeled edge,
  /// i.e. the comparisons imply `a < b`.
  bool ImpliesLt(const Term& a, const Term& b) const;

 private:
  int NodeFor(const Term& t);
  int FindNode(const Term& t) const;

  /// Reachability from `from`, optionally restricted to non-strict edges
  /// and forbidden to pass *through* (not end at) nodes in `blocked`.
  std::vector<bool> Reach(int from, bool leq_edges_only,
                          const std::vector<bool>& blocked) const;

  std::vector<std::string> DirectedSet(
      const std::string& x, const std::vector<std::string>& distinguished,
      bool toward_x) const;

  std::vector<Term> nodes_;
  // adjacency_[u] = (v, strict) edges meaning u < v or u <= v.
  std::vector<std::vector<std::pair<int, bool>>> adjacency_;
  std::vector<std::vector<std::pair<int, bool>>> reverse_adjacency_;
};

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_INEQUALITY_GRAPH_H_
