#include "server/json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace cqac {
namespace server {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeInt(int64_t i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::MakeDouble(double d) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

int64_t JsonValue::AsInt() const {
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return int_;
}

double JsonValue::AsDouble() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return double_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

int64_t JsonValue::FindInt(const std::string& key, int64_t def,
                           bool* ok) const {
  if (ok != nullptr) *ok = true;
  const JsonValue* v = Find(key);
  if (v == nullptr) return def;
  if (v->type() != Type::kInt && v->type() != Type::kDouble) {
    if (ok != nullptr) *ok = false;
    return def;
  }
  return v->AsInt();
}

bool JsonValue::FindBool(const std::string& key, bool def, bool* ok) const {
  if (ok != nullptr) *ok = true;
  const JsonValue* v = Find(key);
  if (v == nullptr) return def;
  if (v->type() != Type::kBool) {
    if (ok != nullptr) *ok = false;
    return def;
  }
  return v->AsBool();
}

std::string JsonValue::FindString(const std::string& key,
                                  const std::string& def, bool* ok) const {
  if (ok != nullptr) *ok = true;
  const JsonValue* v = Find(key);
  if (v == nullptr) return def;
  if (v->type() != Type::kString) {
    if (ok != nullptr) *ok = false;
    return def;
  }
  return v->AsString();
}

namespace {

/// Recursive-descent parser over a bounded-depth document.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* value) {
    SkipSpace();
    if (!ParseValue(value, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& reason) {
    *error_ = reason + " at byte " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* value, int depth) {
    if (depth > kMaxJsonDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!Literal("null", 4)) return false;
        *value = JsonValue();
        return true;
      case 't':
        if (!Literal("true", 4)) return false;
        *value = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!Literal("false", 5)) return false;
        *value = JsonValue::MakeBool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *value = JsonValue::MakeString(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(value, depth);
      case '{':
        return ParseObject(value, depth);
      default:
        return ParseNumber(value);
    }
  }

  bool ParseArray(JsonValue* value, int depth) {
    ++pos_;  // '['
    *value = JsonValue::MakeArray();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      SkipSpace();
      if (!ParseValue(&element, depth + 1)) return false;
      value->MutableArray().push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* value, int depth) {
    ++pos_;  // '{'
    *value = JsonValue::MakeObject();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      value->MutableObject()[std::move(key)] = std::move(member);
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseHex4(uint32_t* code) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape");
      }
    }
    pos_ += 4;
    *code = value;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t code = 0;
            if (!ParseHex4(&code)) return false;
            if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Fail("unpaired surrogate");
              }
              pos_ += 2;
              uint32_t low = 0;
              if (!ParseHex4(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("bad low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail("unpaired surrogate");
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      if (c < 0x20) return Fail("unescaped control character");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* value) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string literal = text_.substr(start, pos_ - start);
    if (literal.empty() || literal == "-") return Fail("bad number");
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long parsed = std::strtoll(literal.c_str(), &end, 10);
      if (errno == 0 && end == literal.c_str() + literal.size()) {
        *value = JsonValue::MakeInt(parsed);
        return true;
      }
      // Out of int64 range: fall through to double.
      errno = 0;
    }
    char* end = nullptr;
    const double parsed = std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size()) return Fail("bad number");
    *value = JsonValue::MakeDouble(parsed);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* value,
               std::string* error) {
  std::string local_error;
  Parser parser(text, error != nullptr ? error : &local_error);
  return parser.Parse(value);
}

void AppendJsonString(std::string* out, const std::string& text) {
  out->push_back('"');
  for (const char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

}  // namespace server
}  // namespace cqac
