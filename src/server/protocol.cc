#include "server/protocol.h"

#include <cstring>
#include <utility>

#include "server/json.h"

namespace cqac {
namespace server {

namespace {

void AppendU32Le(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU64Le(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint32_t ReadU32Le(const char* p) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

uint64_t ReadU64Le(const char* p) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(4 + kFrameIdBytes + frame.body.size());
  AppendU32Le(&out,
              static_cast<uint32_t>(kFrameIdBytes + frame.body.size()));
  AppendU64Le(&out, frame.id);
  out += frame.body;
  return out;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (broken_) return;  // The stream is already unframeable.
  buffer_.append(data, n);
}

FrameDecoder::Status FrameDecoder::Next(Frame* frame, std::string* error) {
  if (broken_) {
    if (error != nullptr) *error = break_reason_;
    return Status::kError;
  }
  if (buffer_.size() < 4) return Status::kNeedMore;
  const uint32_t length = ReadU32Le(buffer_.data());
  if (length < kFrameIdBytes) {
    broken_ = true;
    break_reason_ = "frame length " + std::to_string(length) +
                    " is shorter than the 8-byte request id";
    if (error != nullptr) *error = break_reason_;
    return Status::kError;
  }
  if (length > max_frame_bytes_) {
    broken_ = true;
    break_reason_ = "frame length " + std::to_string(length) +
                    " exceeds the limit of " +
                    std::to_string(max_frame_bytes_) + " bytes";
    if (error != nullptr) *error = break_reason_;
    return Status::kError;
  }
  if (buffer_.size() < 4 + static_cast<size_t>(length)) {
    return Status::kNeedMore;
  }
  frame->id = ReadU64Le(buffer_.data() + 4);
  frame->body.assign(buffer_, 4 + kFrameIdBytes, length - kFrameIdBytes);
  buffer_.erase(0, 4 + static_cast<size_t>(length));
  return Status::kFrame;
}

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kBadRequest: return "bad_request";
    case ResponseStatus::kOverloaded: return "overloaded";
    case ResponseStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

const char* JobOutcomeName(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kFound: return "found";
    case JobOutcome::kNone: return "none";
    case JobOutcome::kAborted: return "aborted";
    case JobOutcome::kError: return "error";
    case JobOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case JobOutcome::kRejected: return "rejected";
  }
  return "unknown";
}

bool ParseServiceRequest(const std::string& body, ServiceRequest* request,
                         std::string* error) {
  *request = ServiceRequest();  // a reused struct must not leak fields
  JsonValue root;
  if (!ParseJson(body, &root, error)) return false;
  if (root.type() != JsonValue::Type::kObject) {
    *error = "request body must be a JSON object";
    return false;
  }

  bool ok = true;
  const std::string type = root.FindString("type", "rewrite", &ok);
  if (!ok) {
    *error = "'type' must be a string";
    return false;
  }
  if (type == "set_catalog") {
    request->kind = RequestKind::kSetCatalog;
  } else if (type == "get_metrics") {
    request->kind = RequestKind::kGetMetrics;
  } else if (type == "dump_telemetry") {
    request->kind = RequestKind::kDumpTelemetry;
  } else if (type != "rewrite") {
    *error = "unknown request type '" + type + "'";
    return false;
  }

  const std::string trace_hex = root.FindString("trace_id", "", &ok);
  if (!ok) {
    *error = "'trace_id' must be a string";
    return false;
  }
  if (!trace_hex.empty() &&
      !obs::ParseTraceIdHex(trace_hex, &request->trace_id)) {
    *error = "'trace_id' must be 32 hex characters";
    return false;
  }

  if (request->kind == RequestKind::kGetMetrics ||
      request->kind == RequestKind::kDumpTelemetry) {
    // Control-plane requests carry no job; ignore any data-plane fields.
    return true;
  }

  const std::string job = root.FindString("job", "", &ok);
  if (!ok) {
    *error = "'job' must be a string";
    return false;
  }
  if (!job.empty()) {
    request->job_text = job;
  } else {
    std::string text;
    if (const JsonValue* views = root.Find("views"); views != nullptr) {
      if (views->type() != JsonValue::Type::kArray) {
        *error = "'views' must be an array of strings";
        return false;
      }
      for (const JsonValue& view : views->AsArray()) {
        if (view.type() != JsonValue::Type::kString) {
          *error = "'views' must be an array of strings";
          return false;
        }
        text += "view " + view.AsString() + "\n";
      }
    }
    const std::string query = root.FindString("query", "", &ok);
    if (!ok) {
      *error = "'query' must be a string";
      return false;
    }
    if (!query.empty()) {
      text += "query " + query + "\n";
    } else if (request->kind != RequestKind::kSetCatalog) {
      // A rewrite needs a query; a catalog swap is views alone (an empty
      // `views` array clears the default catalog).
      *error = "request carries neither 'job' nor 'query'";
      return false;
    }
    request->job_text = std::move(text);
  }

  request->index = root.FindInt("index", 0, &ok);
  if (!ok || request->index < 0) {
    *error = "'index' must be a non-negative integer";
    return false;
  }
  request->deadline_ms = root.FindInt("deadline_ms", 0, &ok);
  if (!ok || request->deadline_ms < 0) {
    *error = "'deadline_ms' must be a non-negative integer";
    return false;
  }
  if (const JsonValue* echo = root.Find("echo"); echo != nullptr) {
    if (echo->type() != JsonValue::Type::kBool) {
      *error = "'echo' must be a boolean";
      return false;
    }
    request->echo = echo->AsBool();
    request->has_echo = true;
  }
  return true;
}

std::string EncodeServiceResponse(const ServiceResponse& response) {
  std::string out = "{\"status\": ";
  AppendJsonString(&out, ResponseStatusName(response.status));
  out += ", \"outcome\": ";
  AppendJsonString(&out, JobOutcomeName(response.outcome));
  if (response.status == ResponseStatus::kOk) {
    out += ", \"body\": ";
    AppendJsonString(&out, response.body);
  } else {
    out += ", \"error\": ";
    AppendJsonString(&out, response.error);
  }
  if (!response.trace_id.IsZero()) {
    out += ", \"trace_id\": ";
    AppendJsonString(&out, obs::TraceIdHex(response.trace_id));
  }
  if (response.has_counters) {
    // Mirrors the shell's per-rewrite record (docs/SYNTAX.md) so service
    // consumers and --json consumers read one shape; schema v5 adds the
    // tier attribution fields and phase2_orders.
    const RewriteStats& s = response.stats;
    out += ", \"counters\": {\"schema_version\": " +
           std::to_string(kStatsJsonSchemaVersion) + ", \"outcome\": ";
    AppendJsonString(&out, JobOutcomeName(response.outcome));
    out += ", \"disjuncts\": " + std::to_string(response.disjuncts) +
           ", \"canonical_databases\": " +
           std::to_string(s.canonical_databases) +
           ", \"kept_canonical_databases\": " +
           std::to_string(s.kept_canonical_databases) +
           ", \"mcds_formed\": " + std::to_string(s.mcds_formed) +
           ", \"phase2_checks\": " + std::to_string(s.phase2_checks) +
           ", \"phase2_orders\": " + std::to_string(s.phase2_orders) +
           ", \"phase1_memo_hits\": " + std::to_string(s.phase1_memo_hits) +
           ", \"phase1_memo_misses\": " +
           std::to_string(s.phase1_memo_misses) +
           ", \"tier\": " + std::to_string(response.tier) +
           ", \"tier_reason\": ";
    AppendJsonString(&out, response.tier_reason);
    out += ", \"tier1_grid_hits\": " + std::to_string(s.tier1_grid_hits) +
           ", \"tier1_grid_misses\": " +
           std::to_string(s.tier1_grid_misses) +
           ", \"tier2_jointree_evals\": " +
           std::to_string(s.tier2_jointree_evals) +
           ", \"enumeration_ns\": " + std::to_string(s.enumeration_ns) +
           ", \"freeze_ns\": " + std::to_string(s.freeze_ns) +
           ", \"phase1_ns\": " + std::to_string(s.phase1_ns) +
           ", \"phase2_ns\": " + std::to_string(s.phase2_ns) + "}";
    out += ", \"tier\": " + std::to_string(response.tier);
  }
  if (response.catalog_epoch > 0) {
    out += ", \"catalog_epoch\": " + std::to_string(response.catalog_epoch) +
           ", \"semantic_cache_hit\": " +
           (response.from_semantic_cache ? std::string("1")
                                         : std::string("0"));
  }
  if (response.catalog_views >= 0) {
    out += ", \"catalog_views\": " + std::to_string(response.catalog_views);
  }
  out += "}";
  return out;
}

bool ParseServiceResponse(const std::string& body, ServiceResponse* response,
                          std::string* error) {
  JsonValue root;
  if (!ParseJson(body, &root, error)) return false;
  if (root.type() != JsonValue::Type::kObject) {
    *error = "response body must be a JSON object";
    return false;
  }
  bool ok = true;
  const std::string status = root.FindString("status", "", &ok);
  static constexpr ResponseStatus kStatuses[] = {
      ResponseStatus::kOk, ResponseStatus::kBadRequest,
      ResponseStatus::kOverloaded, ResponseStatus::kDeadlineExceeded,
      ResponseStatus::kShuttingDown};
  bool matched = false;
  for (const ResponseStatus candidate : kStatuses) {
    if (ok && status == ResponseStatusName(candidate)) {
      response->status = candidate;
      matched = true;
      break;
    }
  }
  if (!matched) {
    *error = "unknown response status '" + status + "'";
    return false;
  }
  const std::string outcome = root.FindString("outcome", "", &ok);
  static constexpr JobOutcome kOutcomes[] = {
      JobOutcome::kFound, JobOutcome::kNone, JobOutcome::kAborted,
      JobOutcome::kError, JobOutcome::kDeadlineExceeded,
      JobOutcome::kRejected};
  matched = false;
  for (const JobOutcome candidate : kOutcomes) {
    if (ok && outcome == JobOutcomeName(candidate)) {
      response->outcome = candidate;
      matched = true;
      break;
    }
  }
  if (!matched) {
    *error = "unknown response outcome '" + outcome + "'";
    return false;
  }
  response->body = root.FindString("body", "", &ok);
  if (!ok) {
    *error = "'body' must be a string";
    return false;
  }
  response->error = root.FindString("error", "", &ok);
  if (!ok) {
    *error = "'error' must be a string";
    return false;
  }
  const std::string trace_hex = root.FindString("trace_id", "", &ok);
  if (!ok) {
    *error = "'trace_id' must be a string";
    return false;
  }
  if (!trace_hex.empty() &&
      !obs::ParseTraceIdHex(trace_hex, &response->trace_id)) {
    *error = "'trace_id' must be 32 hex characters";
    return false;
  }
  response->tier = static_cast<int>(root.FindInt("tier", -1, &ok));
  if (!ok) {
    *error = "'tier' must be an integer";
    return false;
  }
  response->catalog_epoch =
      static_cast<uint64_t>(root.FindInt("catalog_epoch", 0, &ok));
  if (!ok) {
    *error = "'catalog_epoch' must be an integer";
    return false;
  }
  response->from_semantic_cache =
      root.FindInt("semantic_cache_hit", 0, &ok) != 0;
  if (!ok) {
    *error = "'semantic_cache_hit' must be an integer";
    return false;
  }
  response->catalog_views = root.FindInt("catalog_views", -1, &ok);
  if (!ok) {
    *error = "'catalog_views' must be an integer";
    return false;
  }
  return true;
}

}  // namespace server
}  // namespace cqac
