#ifndef CQAC_SERVER_PROTOCOL_H_
#define CQAC_SERVER_PROTOCOL_H_

// The cqacd wire protocol (docs/SERVICE.md).
//
// A connection is a byte stream of frames, identical in both directions:
//
//   u32  length   little-endian; byte count of everything after itself
//   u64  id       little-endian request id, chosen by the client and
//                 echoed verbatim on the matching response
//   ...  body     `length - 8` bytes of UTF-8 JSON
//
// `length` < 8 or > the configured maximum is a protocol error: the
// server answers with a status=bad_request frame (id 0 — the stream is
// unframeable, so no id can be echoed) and closes the connection.
// Responses to requests on one connection may arrive in any order; the
// id is how clients match them up.
//
// Request body (all fields optional unless noted):
//
//   {"type": "rewrite",  // rewrite (default) | set_catalog |
//                        // get_metrics | dump_telemetry
//    "job": "view v(...) :- ...\nquery q(...) :- ...",   // required*
//    "query": "q(X) :- ...", "views": ["v(X) :- ..."],   // *alternative
//    "index": 0,          // job index echoed in the rendered body
//    "deadline_ms": 2000, // wall-clock budget; 0/absent = server default
//    "trace_id": "32 hex chars",  // request trace id; absent (an old
//                                 // client) = the server stamps one
//    "echo": false}       // echo definitions in the body
//
// A `set_catalog` request carries only views — either a `job` block of
// `view` directives or a `views` array — and swaps the server's default
// catalog to a compilation of that view set (docs/SERVICE.md); requires
// the server to run with catalog support (`cqacd --catalog`).
// Subsequent query-only rewrite requests are served against it.
//
// `get_metrics` and `dump_telemetry` are control-plane requests carrying
// no job: the former answers with the Prometheus rendering of the metrics
// registry in `body`; the latter with the flight-recorder excerpt for the
// given `trace_id` (or all retained events when absent) as JSON lines in
// `body` (docs/OBSERVABILITY.md).
//
// Response body:
//
//   {"status": "ok",           // ok | bad_request | overloaded |
//                              // deadline_exceeded | shutting_down
//    "outcome": "found",       // found | none | aborted | error |
//                              // deadline_exceeded | rejected
//    "body": "job 0: ...",     // status=ok only; byte-identical to the
//                              // --serve-batch result block
//    "error": "...",           // non-ok statuses
//    "trace_id": "32 hex",     // the id the request ran under (echoed,
//                              // or server-stamped for old clients)
//    "counters": {...},        // status=ok, job ran: the per-rewrite
//                              // schema_version record of docs/SYNTAX.md
//                              // (schema v5: + tier, tier_reason, grid /
//                              // join-tree counters, phase2_orders)
//    "tier": 1,                // structural tier that served the job
//    "catalog_epoch": 7,       // catalog-served only: epoch of the
//    "semantic_cache_hit": 1,  //   serving catalog + whether the result
//                              //   replayed from the semantic cache
//    "catalog_views": 3}       // set_catalog ack only: view count

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/request_context.h"
#include "rewriting/equiv_rewriter.h"

namespace cqac {
namespace server {

inline constexpr size_t kFrameIdBytes = 8;
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

/// One decoded frame: the request id plus the JSON body.
struct Frame {
  uint64_t id = 0;
  std::string body;
};

/// Serializes `frame` as length + id + body.
std::string EncodeFrame(const Frame& frame);

/// Incremental frame decoder over a received byte stream.  Feed bytes as
/// they arrive, then drain Next() until it stops returning kFrame.  A
/// kError verdict (undersized or oversized length prefix) is sticky: the
/// stream has lost framing and the connection must be torn down.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n);

  enum class Status { kFrame, kNeedMore, kError };
  Status Next(Frame* frame, std::string* error);

  /// Bytes buffered but not yet returned as frames; a nonzero value at
  /// EOF means the peer closed mid-frame.
  size_t buffered() const { return buffer_.size(); }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  bool broken_ = false;
  std::string break_reason_;
};

/// Transport/admission verdict of one response.
enum class ResponseStatus {
  kOk,                // the job ran; see `outcome` and `body`
  kBadRequest,        // unframeable stream or unparseable request JSON
  kOverloaded,        // shed by admission control; retry later
  kDeadlineExceeded,  // cancelled by the request deadline
  kShuttingDown,      // the server is draining; no new work accepted
};
const char* ResponseStatusName(ResponseStatus status);

/// Job-level outcome, the taxonomy shared with BatchSummary: found /
/// none / aborted / error map onto the batch counters of the same name,
/// deadline_exceeded and rejected onto the two service-only counters.
enum class JobOutcome {
  kFound,
  kNone,
  kAborted,
  kError,
  kDeadlineExceeded,
  kRejected,
};
const char* JobOutcomeName(JobOutcome outcome);

/// What a request asks the server to do.
enum class RequestKind {
  kRewrite,        // run one job (the default)
  kSetCatalog,     // swap the server's default catalog
  kGetMetrics,     // render the metrics registry (Prometheus text)
  kDumpTelemetry,  // flight-recorder excerpt for a trace id
};

/// A parsed request.
struct ServiceRequest {
  RequestKind kind = RequestKind::kRewrite;
  std::string job_text;   // one --serve-batch job block
  int64_t index = 0;      // job index used in the rendered result block
  int64_t deadline_ms = 0;  // 0 = use the server default (possibly none)
  bool echo = false;
  bool has_echo = false;  // request carried an explicit "echo"

  /// Trace id the client stamped on the request; zero when absent (an
  /// old client), in which case the server generates one.  For
  /// dump_telemetry it is the excerpt filter instead (zero = all).
  obs::TraceId trace_id;
};

/// Parses a request body.  Accepts either a raw `job` block or the
/// structured `query` + `views` form (assembled into a block, so both
/// take the same parse path server-side); a `set_catalog` request may
/// instead carry views alone.  False + `error` on malformed JSON, wrong
/// field types, or a missing job.
bool ParseServiceRequest(const std::string& body, ServiceRequest* request,
                         std::string* error);

/// A response about to be serialized (server side) or just parsed
/// (client side).
struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kOk;
  JobOutcome outcome = JobOutcome::kError;
  std::string body;   // status=ok: the --serve-batch-identical block
  std::string error;  // non-ok statuses: what went wrong

  /// Trace id the request ran under (echoed from the request, or
  /// server-stamped for old clients); zero = absent.
  obs::TraceId trace_id;

  /// Counter record of the run (status=ok when the job executed).
  bool has_counters = false;
  RewriteStats stats;
  int64_t disjuncts = 0;

  /// Structural tier that served the job (-1 = absent/not a job) and the
  /// classifier's reason, encoded with the counters.
  int tier = -1;
  std::string tier_reason;

  /// Catalog provenance: epoch of the catalog that served the job (0 =
  /// not catalog-served) and whether the result replayed from its
  /// semantic cache.  Encoded only when catalog_epoch > 0.
  uint64_t catalog_epoch = 0;
  bool from_semantic_cache = false;

  /// set_catalog ack only: number of views compiled; -1 = absent.
  int64_t catalog_views = -1;
};

/// Serializes a response body.  The counters object mirrors the
/// per-rewrite JSON record of docs/SYNTAX.md, schema_version included.
std::string EncodeServiceResponse(const ServiceResponse& response);

/// Parses the fields a client needs (status, outcome, body, error);
/// counter parsing is left to callers that want it.  False + `error` on
/// malformed JSON or unknown status/outcome names.
bool ParseServiceResponse(const std::string& body, ServiceResponse* response,
                          std::string* error);

}  // namespace server
}  // namespace cqac

#endif  // CQAC_SERVER_PROTOCOL_H_
