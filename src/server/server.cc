#include "server/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "server/json.h"

namespace cqac {
namespace server {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + strerror(errno);
}

/// Sends all of `data`, tolerating short writes and EINTR.  A failure
/// means the peer is gone; the caller drops the response.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Parses a job block expected to hold only `view` directives (a catalog
/// definition).  An empty block is a valid empty view set.
bool ParseViewsBlock(const std::string& text, ViewSet* views,
                     std::string* error) {
  std::istringstream in(text);
  std::vector<BatchJob> jobs = ParseJobStream(in);
  if (jobs.empty()) {
    *views = ViewSet();
    return true;
  }
  if (jobs.size() > 1) {
    *error = "catalog definition contains " + std::to_string(jobs.size()) +
             " blocks; send one";
    return false;
  }
  BatchJob& job = jobs.front();
  // ParseJobStream flags a view-only block as a job without a query —
  // here that is exactly the expected shape.
  if (!job.error.empty() && job.error != "job has views but no query") {
    *error = job.error;
    return false;
  }
  if (job.query.has_value()) {
    *error = "catalog definition must not contain a query";
    return false;
  }
  *views = std::move(job.views);
  return true;
}

/// One flight-recorder event as a JSON line.
void AppendSpanLine(std::string* out, const obs::FlightEvent& event) {
  *out += "{\"event\": \"span\", \"trace_id\": \"";
  *out += obs::TraceIdHex(event.trace);
  *out += "\", \"name\": ";
  AppendJsonString(out, event.name);
  *out += ", \"start_ns\": " + std::to_string(event.start_ns) +
          ", \"dur_ns\": " + std::to_string(event.dur_ns) +
          ", \"tid\": " + std::to_string(event.tid) + "}\n";
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), memo_(options_.cache_capacity) {
  if (options_.use_catalog) {
    CatalogOptions copts;
    copts.containment_cache_capacity = options_.cache_capacity;
    registry_ = std::make_unique<CatalogRegistry>(/*capacity=*/8, copts);
  }
  // SLO windows keyed by tier, registered up front so get_metrics lists
  // the series before any traffic; index 0 holds requests with no tier
  // (parse errors, jobs cancelled before they ran).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  slo_latency_[0] =
      &reg.windowed("server.slo_request_latency_ns{tier=\"none\"}");
  for (int tier = 0; tier <= 2; ++tier) {
    slo_latency_[tier + 1] = &reg.windowed(
        "server.slo_request_latency_ns{tier=\"" + std::to_string(tier) +
        "\"}");
  }
}

obs::WindowedHistogram& Server::SloForTier(int tier) {
  const int index = tier >= 0 && tier <= 2 ? tier + 1 : 0;
  return *slo_latency_[index];
}

Server::~Server() {
  if (started_.load() && !joined_.load()) {
    BeginDrain();
    Wait();
  }
}

bool Server::Start(std::string* error) {
  if (options_.unix_socket_path.empty() && options_.tcp_port < 0) {
    *error = "no listener configured: set a Unix socket path or a TCP port";
    return false;
  }

  if (!options_.slow_log_path.empty()) {
    if (options_.slow_log_path == "-") {
      slow_log_ = &std::cerr;
    } else {
      auto out = std::make_unique<std::ofstream>(options_.slow_log_path,
                                                 std::ios::app);
      if (!out->is_open()) {
        *error = "cannot open slow log " + options_.slow_log_path;
        return false;
      }
      slow_log_owned_ = std::move(out);
      slow_log_ = slow_log_owned_.get();
    }
  }

  if (!options_.catalog_views_text.empty()) {
    if (registry_ == nullptr) {
      *error = "catalog views configured without catalog support enabled";
      return false;
    }
    ViewSet views;
    std::string verror;
    if (!ParseViewsBlock(options_.catalog_views_text, &views, &verror)) {
      *error = "bad catalog views: " + verror;
      return false;
    }
    std::lock_guard<std::mutex> lock(catalog_mu_);
    default_catalog_ = registry_->GetOrBuild(views);
  }

  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      *error = "Unix socket path longer than " +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " +
               options_.unix_socket_path;
      return false;
    }
    memcpy(addr.sun_path, options_.unix_socket_path.c_str(),
           options_.unix_socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = ErrnoText("socket(AF_UNIX)");
      return false;
    }
    ::unlink(options_.unix_socket_path.c_str());  // Drop any stale socket.
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, 128) < 0) {
      *error = ErrnoText(("bind/listen " + options_.unix_socket_path).c_str());
      ::close(fd);
      return false;
    }
    listen_fds_.push_back(fd);
  }

  if (options_.tcp_port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = ErrnoText("socket(AF_INET)");
      for (const int open_fd : listen_fds_) ::close(open_fd);
      listen_fds_.clear();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, 128) < 0) {
      *error = ErrnoText(
          ("bind/listen 127.0.0.1:" + std::to_string(options_.tcp_port))
              .c_str());
      ::close(fd);
      for (const int open_fd : listen_fds_) ::close(open_fd);
      listen_fds_.clear();
      return false;
    }
    sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
    listen_fds_.push_back(fd);
  }

  if (::pipe(drain_pipe_) < 0) {
    *error = ErrnoText("pipe");
    for (const int open_fd : listen_fds_) ::close(open_fd);
    listen_fds_.clear();
    return false;
  }

  pool_ = std::make_unique<ThreadPool>(ThreadPool::ResolveJobs(options_.jobs));
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  return true;
}

void Server::AcceptLoop() {
  std::vector<pollfd> fds;
  fds.reserve(listen_fds_.size() + 1);
  for (const int fd : listen_fds_) fds.push_back({fd, POLLIN, 0});
  fds.push_back({drain_pipe_[0], POLLIN, 0});

  for (;;) {
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds.back().revents != 0) break;  // BeginDrain woke us.
    for (size_t i = 0; i + 1 < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn_fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn_fd < 0) continue;
      auto conn = std::make_shared<Connection>();
      conn->fd = conn_fd;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        if (draining_.load()) {
          // Raced with BeginDrain: this connection would never be told to
          // shut down, so refuse it outright.
          ::close(conn_fd);
          continue;
        }
        conns_.insert(conn);
        conn_threads_.emplace_back(
            [this, conn = std::move(conn)]() mutable {
              ConnectionLoop(std::move(conn));
            });
      }
      if (obs::MetricsActive()) {
        obs::MetricsRegistry::Global().counter("server.connections").Add(1);
      }
    }
  }

  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

void Server::ConnectionLoop(std::shared_ptr<Connection> conn) {
  FrameDecoder decoder(options_.max_frame_bytes);
  char buf[16384];
  bool protocol_error = false;

  while (!protocol_error) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF (client close or drain's SHUT_RD).

    decoder.Feed(buf, static_cast<size_t>(n));
    for (;;) {
      Frame frame;
      std::string error;
      const FrameDecoder::Status status = decoder.Next(&frame, &error);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kFrame) {
        HandleFrame(conn, std::move(frame));
        continue;
      }
      // The stream has lost framing: answer once with id 0 (no id can be
      // recovered from a broken stream), then tear the connection down.
      ServiceResponse response;
      response.status = ResponseStatus::kBadRequest;
      response.outcome = JobOutcome::kError;
      response.error = error;
      WriteResponse(*conn, 0, response);
      CountOutcome(JobOutcome::kError, nullptr);
      if (obs::MetricsActive()) {
        obs::MetricsRegistry::Global().counter("server.bad_frames").Add(1);
      }
      protocol_error = true;
      break;
    }
  }

  // Responses of this connection's in-flight jobs must still go out (on
  // drain, "in-flight jobs run to completion and deliver"), so the fd
  // stays open until the last job finished writing.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->cv.wait(lock, [&] { return conn->inflight == 0; });
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn);
  }
  conns_cv_.notify_all();
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         Frame frame) {
  ServiceRequest request;
  std::string error;
  if (!ParseServiceRequest(frame.body, &request, &error)) {
    ServiceResponse response;
    response.status = ResponseStatus::kBadRequest;
    response.outcome = JobOutcome::kError;
    response.error = error;
    WriteResponse(*conn, frame.id, response);
    CountOutcome(JobOutcome::kError, nullptr);
    return;
  }

  if (draining_.load()) {
    ServiceResponse response;
    response.status = ResponseStatus::kShuttingDown;
    response.outcome = JobOutcome::kRejected;
    response.error = "server is draining; no new work accepted";
    response.trace_id = request.trace_id;
    WriteResponse(*conn, frame.id, response);
    CountOutcome(JobOutcome::kRejected, nullptr);
    return;
  }

  if (request.kind == RequestKind::kSetCatalog) {
    // A catalog swap is control-plane work: handled inline (compiling a
    // view set is cheap next to one rewrite) and not counted as a job.
    HandleSetCatalog(conn, frame.id, request);
    return;
  }
  if (request.kind == RequestKind::kGetMetrics) {
    HandleGetMetrics(conn, frame.id, request);
    return;
  }
  if (request.kind == RequestKind::kDumpTelemetry) {
    HandleDumpTelemetry(conn, frame.id, request);
    return;
  }

  // Stamp every admitted rewrite with a trace id: clients that sent one
  // keep theirs (wire propagation); old clients get a server-generated
  // id so the flight recorder and slow log still attribute their work.
  // Control-plane requests are not stamped — dump_telemetry's trace_id
  // is its excerpt filter, where absent must keep meaning "everything".
  if (request.trace_id.IsZero()) request.trace_id = obs::GenerateTraceId();

  // Admission control: shed rather than queue once the live count of
  // admitted-but-unfinished jobs reaches the limit.  The pool's
  // max_queue_depth() watermark is monotonic and would latch rejection
  // forever; the live count recovers as jobs finish.
  const int64_t inflight =
      inflight_jobs_.fetch_add(1, std::memory_order_acq_rel);
  if (inflight >= options_.max_inflight) {
    inflight_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    ServiceResponse response;
    response.status = ResponseStatus::kOverloaded;
    response.outcome = JobOutcome::kRejected;
    response.error = "server overloaded: " + std::to_string(inflight) +
                     " requests in flight (limit " +
                     std::to_string(options_.max_inflight) + "); retry later";
    response.trace_id = request.trace_id;
    WriteResponse(*conn, frame.id, response);
    CountOutcome(JobOutcome::kRejected, nullptr);
    if (obs::MetricsActive()) {
      obs::MetricsRegistry::Global().counter("server.requests_shed").Add(1);
    }
    return;
  }

  auto job_state = std::make_shared<JobState>();
  int64_t deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                                : options_.default_deadline_ms;
  if (deadline_ms > 0) {
    ArmDeadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(deadline_ms),
                job_state);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->inflight;
  }
  if (obs::MetricsActive()) {
    obs::MetricsRegistry::Global().counter("server.requests_accepted").Add(1);
  }

  pool_->Submit([this, conn, id = frame.id, request = std::move(request),
                 job_state]() mutable {
    RunJob(conn, id, request, job_state);
  });
}

void Server::HandleSetCatalog(const std::shared_ptr<Connection>& conn,
                              uint64_t id, const ServiceRequest& request) {
  ServiceResponse response;
  if (registry_ == nullptr) {
    response.status = ResponseStatus::kBadRequest;
    response.outcome = JobOutcome::kError;
    response.error =
        "catalog support is disabled; start cqacd with --catalog";
    WriteResponse(*conn, id, response);
    return;
  }
  ViewSet views;
  std::string error;
  if (!ParseViewsBlock(request.job_text, &views, &error)) {
    response.status = ResponseStatus::kBadRequest;
    response.outcome = JobOutcome::kError;
    response.error = error;
    WriteResponse(*conn, id, response);
    return;
  }
  const std::shared_ptr<ViewCatalog> catalog = registry_->GetOrBuild(views);
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    default_catalog_ = catalog;
  }
  const int view_count = static_cast<int>(views.views().size());
  response.status = ResponseStatus::kOk;
  response.outcome = JobOutcome::kNone;
  response.body = "catalog set: " + std::to_string(view_count) + " view" +
                  (view_count == 1 ? "" : "s") + ", epoch " +
                  std::to_string(catalog->epoch()) + "\n";
  response.catalog_epoch = catalog->epoch();
  response.catalog_views = view_count;
  WriteResponse(*conn, id, response);
  if (obs::MetricsActive()) {
    obs::MetricsRegistry::Global().counter("server.catalog_swaps").Add(1);
  }
}

void Server::HandleGetMetrics(const std::shared_ptr<Connection>& conn,
                              uint64_t id, const ServiceRequest& request) {
  // Control-plane: rendered inline so a scrape succeeds even when the
  // job pool is saturated.  cqacd enables the registry unconditionally,
  // so the body is never empty of the server series.
  ServiceResponse response;
  response.status = ResponseStatus::kOk;
  response.outcome = JobOutcome::kNone;
  response.trace_id = request.trace_id;
  response.body = obs::PrometheusText(obs::MetricsRegistry::Global());
  WriteResponse(*conn, id, response);
  if (obs::MetricsActive()) {
    obs::MetricsRegistry::Global().counter("server.metrics_scrapes").Add(1);
  }
}

void Server::HandleDumpTelemetry(const std::shared_ptr<Connection>& conn,
                                 uint64_t id, const ServiceRequest& request) {
  // The request's trace_id (when sent) filters the excerpt to one
  // request; without one the whole recorder window is returned.
  // HandleFrame deliberately does not stamp fresh ids on control-plane
  // requests, so "absent" still reaches here as zero.
  const obs::TraceId filter = request.trace_id;
  const obs::FlightExcerpt excerpt = obs::CollectFlightEvents(filter);
  std::string body;
  body += "{\"event\": \"telemetry\", \"tracing_compiled_in\": ";
  body += obs::TracingCompiledIn() ? "true" : "false";
  body += ", \"recorder_active\": ";
  body += obs::FlightRecorderActive() ? "true" : "false";
  body += ", \"filter\": \"" + obs::TraceIdHex(filter) + "\"";
  body += ", \"events\": " + std::to_string(excerpt.events.size());
  body += ", \"overwritten_events\": " + std::to_string(excerpt.overwritten);
  body += "}\n";
  for (const obs::FlightEvent& event : excerpt.events) {
    AppendSpanLine(&body, event);
  }
  ServiceResponse response;
  response.status = ResponseStatus::kOk;
  response.outcome = JobOutcome::kNone;
  response.trace_id = request.trace_id;
  response.body = std::move(body);
  WriteResponse(*conn, id, response);
}

void Server::RunJob(const std::shared_ptr<Connection>& conn, uint64_t id,
                    const ServiceRequest& request,
                    const std::shared_ptr<JobState>& job_state) {
  // Bind the request's trace id to this worker thread BEFORE opening the
  // job span, so `server.job` and every span under it lands in the
  // flight recorder attributed to this request.
  const obs::RequestScope trace_scope(request.trace_id);
  CQAC_TRACE_SPAN("server.job");
  const bool metrics = obs::MetricsActive();
  const int64_t start_ns = NowNs();

  ServiceResponse response;
  response.trace_id = request.trace_id;
  const RewriteStats* counted_stats = nullptr;
  RewriteStats run_stats;
  const BatchJob job = ParseJobBlock(request.job_text);
  if (!job.error.empty()) {
    response.status = ResponseStatus::kOk;
    response.outcome = JobOutcome::kError;
    response.body =
        RenderJobError(static_cast<size_t>(request.index), job.error);
  } else if (job_state->token.cancelled()) {
    // The deadline fired while the job sat in the pool queue.
    response.status = ResponseStatus::kDeadlineExceeded;
    response.outcome = JobOutcome::kDeadlineExceeded;
    response.error = "deadline exceeded before the job started";
  } else {
    RewriteOptions per_job = options_.rewrite;
    per_job.jobs = 1;
    per_job.cancel = &job_state->token;
    std::shared_ptr<ViewCatalog> catalog;
    if (registry_ != nullptr) {
      if (job.views.views().empty()) {
        // Query-only request: served against the default catalog when one
        // is installed (else an empty view set, same as the classic path).
        std::lock_guard<std::mutex> lock(catalog_mu_);
        catalog = default_catalog_;
      }
      if (catalog == nullptr) catalog = registry_->GetOrBuild(job.views);
    }
    const RewriteResult result =
        catalog != nullptr
            ? catalog->Rewrite(*job.query, per_job)
            : EquivalentRewriter(*job.query, job.views, per_job, &memo_)
                  .Run();
    response.catalog_epoch = result.catalog_epoch;
    response.from_semantic_cache = result.from_semantic_cache;
    run_stats = result.stats;
    counted_stats = &run_stats;
    const bool cancelled = result.outcome == RewriteOutcome::kAborted &&
                           job_state->token.cancelled();
    if (cancelled) {
      response.status = ResponseStatus::kDeadlineExceeded;
      response.outcome = JobOutcome::kDeadlineExceeded;
      response.error = "deadline exceeded after " +
                       std::to_string(request.deadline_ms > 0
                                          ? request.deadline_ms
                                          : options_.default_deadline_ms) +
                       " ms";
      const int64_t cancel_ns = job_state->cancel_ns.load();
      if (metrics && cancel_ns > 0) {
        obs::MetricsRegistry::Global()
            .histogram("server.cancel_drain_ns")
            .Observe(NowNs() - cancel_ns);
      }
    } else {
      response.status = ResponseStatus::kOk;
      switch (result.outcome) {
        case RewriteOutcome::kRewritingFound:
          response.outcome = JobOutcome::kFound;
          break;
        case RewriteOutcome::kNoRewriting:
          response.outcome = JobOutcome::kNone;
          break;
        case RewriteOutcome::kAborted:
          response.outcome = JobOutcome::kAborted;
          break;
      }
      response.body = RenderJobResult(
          static_cast<size_t>(request.index), job, result,
          request.has_echo ? request.echo : options_.echo);
      response.has_counters = true;
      response.stats = result.stats;
      response.disjuncts = static_cast<int64_t>(result.rewriting.size());
    }
    response.tier = result.tier;
    response.tier_reason = result.tier_reason;
  }
  CountOutcome(response.outcome, counted_stats);

  job_state->done.store(true);
  WriteResponse(*conn, id, response);
  const int64_t latency_ns = NowNs() - start_ns;
  // The per-tier SLO windows are always on (get_metrics serves them even
  // without `cqacd --metrics`); the flat histogram keeps the old gate.
  SloForTier(response.tier).Observe(latency_ns);
  if (metrics) {
    obs::MetricsRegistry::Global()
        .histogram("server.request_latency_ns")
        .Observe(latency_ns);
  }
  if (response.outcome == JobOutcome::kDeadlineExceeded ||
      response.outcome == JobOutcome::kError) {
    EmitSlowRequest(response, latency_ns,
                    request.deadline_ms > 0 ? request.deadline_ms
                                            : options_.default_deadline_ms);
  }

  inflight_jobs_.fetch_sub(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    --conn->inflight;
  }
  conn->cv.notify_all();
}

void Server::EmitSlowRequest(const ServiceResponse& response,
                             int64_t latency_ns, int64_t deadline_ms) {
  if (slow_log_ == nullptr) return;
  // One attribution header plus the request's flight-recorder excerpt,
  // all as self-contained JSON lines (schema in docs/OBSERVABILITY.md).
  // The excerpt is collected before taking slow_log_mu_ — collection
  // only reads the rings.
  const obs::FlightExcerpt excerpt = obs::CollectFlightEvents(
      response.trace_id);
  std::string out;
  out += "{\"event\": \"slow_request\", \"trace_id\": \"";
  out += obs::TraceIdHex(response.trace_id);
  out += "\", \"outcome\": ";
  AppendJsonString(&out, JobOutcomeName(response.outcome));
  out += ", \"tier\": " + std::to_string(response.tier);
  out += ", \"tier_reason\": ";
  AppendJsonString(&out, response.tier_reason);
  out += ", \"latency_ns\": " + std::to_string(latency_ns);
  out += ", \"deadline_ms\": " + std::to_string(deadline_ms);
  out += ", \"enumeration_ns\": " +
         std::to_string(response.stats.enumeration_ns);
  out += ", \"freeze_ns\": " + std::to_string(response.stats.freeze_ns);
  out += ", \"phase1_ns\": " + std::to_string(response.stats.phase1_ns);
  out += ", \"phase2_ns\": " + std::to_string(response.stats.phase2_ns);
  out += ", \"spans\": " + std::to_string(excerpt.events.size());
  out += ", \"overwritten_events\": " + std::to_string(excerpt.overwritten);
  out += "}\n";
  for (const obs::FlightEvent& event : excerpt.events) {
    AppendSpanLine(&out, event);
  }
  std::lock_guard<std::mutex> lock(slow_log_mu_);
  *slow_log_ << out << std::flush;
}

void Server::WriteResponse(Connection& conn, uint64_t id,
                           const ServiceResponse& response) {
  Frame frame;
  frame.id = id;
  frame.body = EncodeServiceResponse(response);
  const std::string encoded = EncodeFrame(frame);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  SendAll(conn.fd, encoded);  // Failure = peer gone; nothing to salvage.
}

void Server::ArmDeadline(std::chrono::steady_clock::time_point deadline,
                         const std::shared_ptr<JobState>& job) {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  deadlines_.push(DeadlineEntry{deadline, job});
  watchdog_cv_.notify_one();
}

void Server::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    if (watchdog_stop_) return;
    if (deadlines_.empty()) {
      watchdog_cv_.wait(lock);
      continue;
    }
    const DeadlineEntry next = deadlines_.top();
    if (std::chrono::steady_clock::now() >= next.deadline) {
      deadlines_.pop();
      if (!next.job->done.load()) {
        // Stamp the cancellation time before firing the token so the job
        // thread, which reads cancel_ns only after observing the token,
        // sees a meaningful value for the drain histogram.
        next.job->cancel_ns.store(NowNs());
        next.job->token.Cancel();
        if (obs::MetricsActive()) {
          obs::MetricsRegistry::Global()
              .counter("server.deadlines_fired")
              .Add(1);
        }
      }
      continue;
    }
    watchdog_cv_.wait_until(lock, next.deadline);
  }
}

void Server::BeginDrain() {
  if (!started_.load()) return;
  bool expected = false;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!draining_.compare_exchange_strong(expected, true)) return;
    // Under conns_mu_ so no connection can register between the flag and
    // the shutdown sweep below (AcceptLoop checks draining_ while
    // holding the same mutex).
    for (const std::shared_ptr<Connection>& conn : conns_) {
      // Readers wake with EOF; in-flight responses still go out over the
      // intact write side.
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  const char byte = 1;
  // Wake the accept loop; a failed write means it is already gone.
  while (::write(drain_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
}

void Server::Wait() {
  if (!started_.load() || joined_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait(lock, [&] { return conns_.empty(); });
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  if (obs::MetricsActive() && pool_ != nullptr) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.gauge("threadpool.max_queue_depth").Max(pool_->max_queue_depth());
    reg.counter("threadpool.tasks_stolen").Add(pool_->tasks_stolen());
  }
  pool_.reset();  // Safe: every job already finished (conns_ drained).
  ::close(drain_pipe_[0]);
  ::close(drain_pipe_[1]);
  drain_pipe_[0] = drain_pipe_[1] = -1;
}

void Server::CountOutcome(JobOutcome outcome, const RewriteStats* stats) {
  std::lock_guard<std::mutex> lock(summary_mu_);
  ++summary_.jobs_total;
  switch (outcome) {
    case JobOutcome::kFound: ++summary_.found; break;
    case JobOutcome::kNone: ++summary_.none; break;
    case JobOutcome::kAborted: ++summary_.aborted; break;
    case JobOutcome::kError: ++summary_.errors; break;
    case JobOutcome::kDeadlineExceeded: ++summary_.deadline_exceeded; break;
    case JobOutcome::kRejected: ++summary_.rejected; break;
  }
  if (stats != nullptr) summary_.rewrite.Merge(*stats);
}

BatchSummary Server::summary() const {
  BatchSummary out;
  {
    std::lock_guard<std::mutex> lock(summary_mu_);
    out = summary_;
  }
  if (registry_ != nullptr) {
    const CatalogRegistryStats cstats = registry_->Stats();
    out.catalog_enabled = true;
    out.catalogs_built = cstats.catalogs_built;
    out.catalog_plans_built = cstats.plans_built;
    out.catalog_plan_hits = cstats.plan_hits;
    out.catalog_semantic_hits = cstats.semantic_hits;
    out.catalog_semantic_misses = cstats.semantic_misses;
    out.catalog_epoch = cstats.latest_epoch;
    out.cache = cstats.containment;
  } else {
    out.cache = memo_.Stats();
  }
  return out;
}

}  // namespace server
}  // namespace cqac
