#ifndef CQAC_SERVER_JSON_H_
#define CQAC_SERVER_JSON_H_

// A minimal JSON value for the wire protocol (server/protocol.h): enough
// to parse client requests and pick responses apart, nothing more.  The
// repo's own JSON *output* (stats records, bench results) is streamed
// directly — this type is for the one place we must read JSON we did not
// write.
//
// Numbers parse as int64 when the literal is integral and in range
// (request ids, deadlines, counters) and as double otherwise; AsInt
// accepts both.  Strings decode escape sequences including \uXXXX
// (encoded to UTF-8; surrogate pairs supported).  The parser rejects
// trailing garbage and nesting deeper than kMaxDepth rather than
// recursing unboundedly on adversarial input.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cqac {
namespace server {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null

  static JsonValue MakeBool(bool b);
  static JsonValue MakeInt(int64_t i);
  static JsonValue MakeDouble(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors; the value must have the matching type.
  bool AsBool() const { return bool_; }
  int64_t AsInt() const;     // kInt, or kDouble truncated toward zero
  double AsDouble() const;   // kDouble or kInt
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  std::vector<JsonValue>& MutableArray() { return array_; }
  std::map<std::string, JsonValue>& MutableObject() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience typed lookups with defaults, tolerant of absent keys but
  /// strict about present-but-mistyped values (returns false through
  /// `*ok` when non-null in that case, else the default).
  int64_t FindInt(const std::string& key, int64_t def,
                  bool* ok = nullptr) const;
  bool FindBool(const std::string& key, bool def, bool* ok = nullptr) const;
  std::string FindString(const std::string& key, const std::string& def,
                         bool* ok = nullptr) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

inline constexpr int kMaxJsonDepth = 64;

/// Parses `text` as one JSON document (trailing whitespace permitted,
/// anything else is an error).  On failure returns false and sets
/// `error` to a human-readable reason with a byte offset.
bool ParseJson(const std::string& text, JsonValue* value, std::string* error);

/// Appends `text` to `out` as a JSON string literal, quotes included.
void AppendJsonString(std::string* out, const std::string& text);

}  // namespace server
}  // namespace cqac

#endif  // CQAC_SERVER_JSON_H_
