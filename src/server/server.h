#ifndef CQAC_SERVER_SERVER_H_
#define CQAC_SERVER_SERVER_H_

// The long-lived rewrite service behind tools/cqacd (docs/SERVICE.md):
// accepts client connections on a Unix-domain and/or loopback TCP
// socket, speaks the length-prefixed frame protocol of
// server/protocol.h, and multiplexes every connection's requests onto
// one work-stealing ThreadPool with one shared containment MemoCache —
// so repeated queries get cheaper across connections, exactly as they do
// across jobs of one `cqacsh --serve-batch` run.
//
// Lifecycle: Start() binds, listens, and returns; BeginDrain() (wired to
// SIGTERM in cqacd) stops accepting connections and new requests while
// every in-flight job runs to completion and delivers its response;
// Wait() blocks until the drain is complete and every thread is joined.
//
// Deadlines: a request's `deadline_ms` arms a watchdog that fires the
// job's CancellationToken (RewriteOptions::cancel), aborting the
// rewriter at its next work-unit boundary; the time from cancellation to
// job completion lands in the `server.cancel_drain_ns` histogram.
//
// Backpressure: when the number of admitted-but-unfinished jobs reaches
// ServerOptions::max_inflight, new requests are shed immediately with a
// structured `overloaded` response instead of queueing without bound —
// the client owns the retry policy.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/view_catalog.h"
#include "obs/metrics.h"
#include "runtime/batch_driver.h"
#include "runtime/cancellation.h"
#include "runtime/memo_cache.h"
#include "runtime/thread_pool.h"
#include "server/protocol.h"

namespace cqac {
namespace server {

struct ServerOptions {
  /// Listen on this Unix-domain socket when non-empty.  Any stale file
  /// at the path is unlinked before binding.
  std::string unix_socket_path;

  /// Listen on 127.0.0.1:<tcp_port> when >= 0; 0 picks an ephemeral
  /// port, readable from Server::tcp_port() after Start().  At least one
  /// of the two listeners must be configured.
  int tcp_port = -1;

  /// Worker threads of the job pool; 0 = hardware concurrency.
  int jobs = 0;

  /// Total entry budget of the shared containment memo cache.
  size_t cache_capacity = 1 << 16;

  /// Admission-control limit: requests arriving while this many jobs are
  /// admitted but unfinished receive `overloaded` responses.
  int64_t max_inflight = 256;

  /// Largest frame accepted from a client; longer length prefixes are a
  /// protocol error that closes the connection.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; 0 = no deadline.
  int64_t default_deadline_ms = 0;

  /// Per-job rewriting options.  `rewrite.jobs` is forced to 1 and
  /// `rewrite.cancel` is owned per job: like the batch driver, the
  /// server parallelizes ACROSS requests.
  RewriteOptions rewrite;

  /// Default for requests that do not carry their own `echo`.
  bool echo = false;

  /// Serve jobs through a CatalogRegistry (catalog/view_catalog.h): each
  /// distinct view set is compiled once into a shared ViewCatalog whose
  /// plans, Phase-1 memo, containment memo, and semantic result cache
  /// persist across requests and connections.  Also enables the
  /// `set_catalog` request, which installs a default catalog that serves
  /// query-only requests.  Results are byte-identical either way.
  /// Behind `cqacd --catalog`.
  bool use_catalog = false;

  /// Startup default catalog: a job block of `view` directives compiled
  /// at Start() (requires use_catalog).  Behind `cqacd --catalog-views`.
  std::string catalog_views_text;

  /// Slow-request log sink: on a deadline-fired cancellation or request
  /// error the server appends the request's attribution header plus its
  /// flight-recorder excerpt as JSON lines (docs/OBSERVABILITY.md).
  /// Empty = disabled; "-" = stderr.  Behind `cqacd --slow-log`.
  std::string slow_log_path;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Drains and joins if the caller did not.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and starts the accept, watchdog, and
  /// worker threads.  False + `error` on any socket failure.
  bool Start(std::string* error);

  /// The bound TCP port (meaningful after Start() when tcp_port >= 0).
  int tcp_port() const { return bound_tcp_port_; }

  /// Initiates graceful drain: stop accepting connections, answer new
  /// requests with `shutting_down`, let in-flight jobs finish and
  /// deliver.  Idempotent; safe from any thread (cqacd calls it from its
  /// signal-wait thread).
  void BeginDrain();

  /// Blocks until the drain completes: every connection closed, every
  /// job finished, every thread joined.
  void Wait();

  /// Aggregated job outcomes since Start, in the batch taxonomy; the
  /// cache field reflects the shared memo cache.  cqacd prints this as
  /// the standard batch footer on exit.
  BatchSummary summary() const;

 private:
  /// One client connection.  Owned jointly by its reader thread and any
  /// in-flight job tasks via shared_ptr; the reader closes the fd only
  /// after the last job's response is written.
  struct Connection {
    int fd = -1;
    std::mutex write_mu;           // serializes response frames
    std::mutex mu;                 // guards inflight for cv
    std::condition_variable cv;
    int64_t inflight = 0;
  };

  /// Deadline/cancellation state of one admitted job.
  struct JobState {
    CancellationToken token;
    std::atomic<int64_t> cancel_ns{0};  // steady-clock ns of Cancel()
    std::atomic<bool> done{false};
  };

  struct DeadlineEntry {
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<JobState> job;
    bool operator>(const DeadlineEntry& other) const {
      return deadline > other.deadline;
    }
  };

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void WatchdogLoop();
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void HandleSetCatalog(const std::shared_ptr<Connection>& conn, uint64_t id,
                        const ServiceRequest& request);
  void HandleGetMetrics(const std::shared_ptr<Connection>& conn, uint64_t id,
                        const ServiceRequest& request);
  void HandleDumpTelemetry(const std::shared_ptr<Connection>& conn,
                           uint64_t id, const ServiceRequest& request);
  void RunJob(const std::shared_ptr<Connection>& conn, uint64_t id,
              const ServiceRequest& request,
              const std::shared_ptr<JobState>& job_state);
  void WriteResponse(Connection& conn, uint64_t id,
                     const ServiceResponse& response);
  void ArmDeadline(std::chrono::steady_clock::time_point deadline,
                   const std::shared_ptr<JobState>& job);
  void CountOutcome(JobOutcome outcome, const RewriteStats* stats);
  /// The sliding-window SLO latency histogram for `tier` (-1..2); the
  /// references are registry-owned and cached at construction.
  obs::WindowedHistogram& SloForTier(int tier);
  /// Appends one slow-request record (header + flight excerpt) to the
  /// configured slow log; no-op when none is configured.
  void EmitSlowRequest(const ServiceResponse& response, int64_t latency_ns,
                       int64_t deadline_ms);

  ServerOptions options_;
  MemoCache memo_;
  std::unique_ptr<ThreadPool> pool_;

  /// Catalog mode (options_.use_catalog): the registry of compiled view
  /// sets, plus the default catalog serving query-only requests.  The
  /// default is swapped atomically under catalog_mu_ by `set_catalog`;
  /// in-flight jobs keep their shared_ptr to the catalog they started on.
  std::unique_ptr<CatalogRegistry> registry_;
  mutable std::mutex catalog_mu_;
  std::shared_ptr<ViewCatalog> default_catalog_;

  std::vector<int> listen_fds_;
  int bound_tcp_port_ = -1;
  int drain_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::thread watchdog_thread_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> joined_{false};
  std::atomic<int64_t> inflight_jobs_{0};

  mutable std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::set<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;
  bool watchdog_stop_ = false;

  mutable std::mutex summary_mu_;
  BatchSummary summary_;

  /// Per-tier sliding-window latency histograms (index 0 = tier "none",
  /// then tiers 0..2), registered eagerly so get_metrics lists them
  /// before traffic arrives.
  obs::WindowedHistogram* slo_latency_[4] = {nullptr, nullptr, nullptr,
                                             nullptr};

  /// Slow-request log sink (options_.slow_log_path); lines are whole
  /// JSON objects appended under slow_log_mu_.
  std::mutex slow_log_mu_;
  std::unique_ptr<std::ostream> slow_log_owned_;
  std::ostream* slow_log_ = nullptr;
};

}  // namespace server
}  // namespace cqac

#endif  // CQAC_SERVER_SERVER_H_
