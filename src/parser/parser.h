#ifndef CQAC_PARSER_PARSER_H_
#define CQAC_PARSER_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/query.h"

namespace cqac {

/// Parses the paper's datalog-style notation for CQACs.
///
/// Grammar (informal):
///
///   program    := rule ( '.' rule )* '.'?
///   rule       := atom ':-' literal ( ',' literal )*
///   literal    := atom | comparison
///   atom       := lower_ident '(' term ( ',' term )* ')'
///              |  lower_ident '(' ')'                    -- 0-ary
///   comparison := term op term
///   op         := '<' | '<=' | '=' | '!=' | '>=' | '>'
///   term       := UpperIdent        -- variable (paper convention)
///              |  number            -- rational constant, e.g. 7, -3, 2.5
///
/// `%` starts a comment running to end of line.  Whitespace is free-form.
/// Constants must be numeric: the comparison domain is the rationals.
///
/// All functions report failure by returning `std::nullopt` and, when
/// `error` is non-null, storing a human-readable message with 1-based
/// line/column info.
class Parser {
 public:
  /// Parses a single rule, e.g. `q(X) :- a(X,Y), X < 5`.  A trailing period
  /// is permitted.
  static std::optional<ConjunctiveQuery> ParseRule(
      std::string_view text, std::string* error = nullptr);

  /// Parses a sequence of period-separated rules.
  static std::optional<std::vector<ConjunctiveQuery>> ParseProgram(
      std::string_view text, std::string* error = nullptr);

  /// Parses a single rule and aborts the process with a diagnostic on
  /// failure.  Convenience for tests, examples, and benchmarks where the
  /// input is a trusted literal.
  static ConjunctiveQuery MustParseRule(std::string_view text);

  /// Parses a program and aborts the process with a diagnostic on failure.
  static std::vector<ConjunctiveQuery> MustParseProgram(std::string_view text);

  /// Parses a program whose rules all share one head predicate into a
  /// UnionQuery; aborts on failure or mixed head predicates.
  static UnionQuery MustParseUnion(std::string_view text);
};

}  // namespace cqac

#endif  // CQAC_PARSER_PARSER_H_
