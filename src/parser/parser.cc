#include "parser/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cqac {

namespace {

enum class TokKind {
  kLowerIdent,
  kUpperIdent,
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kTurnstile,  // :-
  kPeriod,
  kLt,
  kLe,
  kEq,
  kNe,
  kGe,
  kGt,
  kEnd,
  kError,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  Rational number;
  int line = 1;
  int col = 1;
};

/// Single-pass lexer over the rule text.  Produced tokens carry 1-based
/// line/column for error messages.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token Next() {
    SkipWhitespaceAndComments();
    Token tok;
    tok.line = line_;
    tok.col = col_;
    if (pos_ >= text_.size()) {
      tok.kind = TokKind::kEnd;
      return tok;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdent(tok);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      return LexNumber(tok);
    }
    switch (c) {
      case '(':
        Advance();
        tok.kind = TokKind::kLParen;
        return tok;
      case ')':
        Advance();
        tok.kind = TokKind::kRParen;
        return tok;
      case ',':
        Advance();
        tok.kind = TokKind::kComma;
        return tok;
      case '.':
        Advance();
        tok.kind = TokKind::kPeriod;
        return tok;
      case ':':
        Advance();
        if (pos_ < text_.size() && text_[pos_] == '-') {
          Advance();
          tok.kind = TokKind::kTurnstile;
          return tok;
        }
        tok.kind = TokKind::kError;
        tok.text = "expected '-' after ':'";
        return tok;
      case '<':
        Advance();
        if (pos_ < text_.size() && text_[pos_] == '=') {
          Advance();
          tok.kind = TokKind::kLe;
        } else {
          tok.kind = TokKind::kLt;
        }
        return tok;
      case '>':
        Advance();
        if (pos_ < text_.size() && text_[pos_] == '=') {
          Advance();
          tok.kind = TokKind::kGe;
        } else {
          tok.kind = TokKind::kGt;
        }
        return tok;
      case '=':
        Advance();
        // Accept both `=` and `==`.
        if (pos_ < text_.size() && text_[pos_] == '=') Advance();
        tok.kind = TokKind::kEq;
        return tok;
      case '!':
        Advance();
        if (pos_ < text_.size() && text_[pos_] == '=') {
          Advance();
          tok.kind = TokKind::kNe;
          return tok;
        }
        tok.kind = TokKind::kError;
        tok.text = "expected '=' after '!'";
        return tok;
      default:
        tok.kind = TokKind::kError;
        tok.text = std::string("unexpected character '") + c + "'";
        return tok;
    }
  }

 private:
  void Advance() {
    if (pos_ < text_.size()) {
      if (text_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token LexIdent(Token tok) {
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '\'')) {
      name += text_[pos_];
      Advance();
    }
    tok.text = name;
    tok.kind = std::isupper(static_cast<unsigned char>(name[0]))
                   ? TokKind::kUpperIdent
                   : TokKind::kLowerIdent;
    return tok;
  }

  Token LexNumber(Token tok) {
    bool negative = false;
    if (text_[pos_] == '-' || text_[pos_] == '+') {
      negative = text_[pos_] == '-';
      Advance();
    }
    int64_t integral = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      integral = integral * 10 + (text_[pos_] - '0');
      Advance();
    }
    int64_t frac_num = 0;
    int64_t frac_den = 1;
    if (pos_ < text_.size() && text_[pos_] == '.' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      Advance();  // consume '.'
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        frac_num = frac_num * 10 + (text_[pos_] - '0');
        frac_den *= 10;
        Advance();
      }
    }
    Rational value =
        Rational(integral) + Rational(frac_num, frac_den);
    // `num/den` rational literals, the form Rational::ToString emits, so
    // serialized comparisons round-trip through the parser.
    if (frac_den == 1 && pos_ < text_.size() && text_[pos_] == '/' &&
        pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      Advance();  // consume '/'
      int64_t denominator = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        denominator = denominator * 10 + (text_[pos_] - '0');
        Advance();
      }
      if (denominator != 0) value = Rational(integral, denominator);
    }
    if (negative) value = -value;
    tok.kind = TokKind::kNumber;
    tok.number = value;
    return tok;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// Recursive-descent parser over the token stream.
class RuleParser {
 public:
  explicit RuleParser(std::string_view text) : lexer_(text) {
    current_ = lexer_.Next();
  }

  bool AtEnd() const { return current_.kind == TokKind::kEnd; }

  bool ParseOneRule(ConjunctiveQuery* out) {
    Atom head;
    if (!ParseAtom(&head)) return false;
    if (!Expect(TokKind::kTurnstile, "':-'")) return false;
    std::vector<Atom> body;
    std::vector<Comparison> comparisons;
    for (;;) {
      if (!ParseLiteral(&body, &comparisons)) return false;
      if (current_.kind == TokKind::kComma) {
        Consume();
        continue;
      }
      break;
    }
    if (current_.kind == TokKind::kPeriod) Consume();
    *out = ConjunctiveQuery(std::move(head), std::move(body),
                            std::move(comparisons));
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  void Consume() { current_ = lexer_.Next(); }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "parse error at line " + std::to_string(current_.line) +
               ", column " + std::to_string(current_.col) + ": " + message;
    }
    return false;
  }

  bool Expect(TokKind kind, const std::string& what) {
    if (current_.kind != kind) {
      return Fail("expected " + what);
    }
    Consume();
    return true;
  }

  bool ParseTerm(Term* out) {
    switch (current_.kind) {
      case TokKind::kUpperIdent:
        *out = Term::Variable(current_.text);
        Consume();
        return true;
      case TokKind::kNumber:
        *out = Term::Constant(current_.number);
        Consume();
        return true;
      case TokKind::kLowerIdent:
        return Fail("'" + current_.text +
                    "': constants must be numeric (the comparison domain is "
                    "the rationals); variables start with an upper-case "
                    "letter");
      default:
        return Fail("expected a term (variable or numeric constant)");
    }
  }

  bool ParseAtom(Atom* out) {
    if (current_.kind != TokKind::kLowerIdent) {
      return Fail("expected a predicate name (lower-case identifier)");
    }
    const std::string predicate = current_.text;
    Consume();
    if (!Expect(TokKind::kLParen, "'('")) return false;
    std::vector<Term> args;
    if (current_.kind != TokKind::kRParen) {
      for (;;) {
        Term t;
        if (!ParseTerm(&t)) return false;
        args.push_back(std::move(t));
        if (current_.kind == TokKind::kComma) {
          Consume();
          continue;
        }
        break;
      }
    }
    if (!Expect(TokKind::kRParen, "')'")) return false;
    *out = Atom(predicate, std::move(args));
    return true;
  }

  static bool TokenToOp(TokKind kind, CompOp* out) {
    switch (kind) {
      case TokKind::kLt:
        *out = CompOp::kLt;
        return true;
      case TokKind::kLe:
        *out = CompOp::kLe;
        return true;
      case TokKind::kEq:
        *out = CompOp::kEq;
        return true;
      case TokKind::kNe:
        *out = CompOp::kNe;
        return true;
      case TokKind::kGe:
        *out = CompOp::kGe;
        return true;
      case TokKind::kGt:
        *out = CompOp::kGt;
        return true;
      default:
        return false;
    }
  }

  bool ParseLiteral(std::vector<Atom>* body,
                    std::vector<Comparison>* comparisons) {
    if (current_.kind == TokKind::kLowerIdent) {
      Atom a;
      if (!ParseAtom(&a)) return false;
      body->push_back(std::move(a));
      return true;
    }
    // Otherwise a comparison: term op term.
    Term lhs;
    if (!ParseTerm(&lhs)) return false;
    CompOp op;
    if (!TokenToOp(current_.kind, &op)) {
      return Fail("expected a comparison operator");
    }
    Consume();
    Term rhs;
    if (!ParseTerm(&rhs)) return false;
    comparisons->push_back(Comparison(std::move(lhs), op, std::move(rhs)));
    return true;
  }

  Lexer lexer_;
  Token current_;
  std::string error_;
};

}  // namespace

std::optional<ConjunctiveQuery> Parser::ParseRule(std::string_view text,
                                                  std::string* error) {
  RuleParser parser(text);
  ConjunctiveQuery q;
  if (!parser.ParseOneRule(&q)) {
    if (error != nullptr) *error = parser.error();
    return std::nullopt;
  }
  if (!parser.AtEnd()) {
    if (error != nullptr) *error = "trailing input after rule";
    return std::nullopt;
  }
  return q;
}

std::optional<std::vector<ConjunctiveQuery>> Parser::ParseProgram(
    std::string_view text, std::string* error) {
  RuleParser parser(text);
  std::vector<ConjunctiveQuery> rules;
  while (!parser.AtEnd()) {
    ConjunctiveQuery q;
    if (!parser.ParseOneRule(&q)) {
      if (error != nullptr) *error = parser.error();
      return std::nullopt;
    }
    rules.push_back(std::move(q));
  }
  return rules;
}

ConjunctiveQuery Parser::MustParseRule(std::string_view text) {
  std::string error;
  std::optional<ConjunctiveQuery> q = ParseRule(text, &error);
  if (!q.has_value()) {
    std::fprintf(stderr, "MustParseRule(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(), error.c_str());
    std::abort();
  }
  return *std::move(q);
}

std::vector<ConjunctiveQuery> Parser::MustParseProgram(std::string_view text) {
  std::string error;
  std::optional<std::vector<ConjunctiveQuery>> rules =
      ParseProgram(text, &error);
  if (!rules.has_value()) {
    std::fprintf(stderr, "MustParseProgram: %s\n", error.c_str());
    std::abort();
  }
  return *std::move(rules);
}

UnionQuery Parser::MustParseUnion(std::string_view text) {
  std::vector<ConjunctiveQuery> rules = MustParseProgram(text);
  if (rules.empty()) {
    std::fprintf(stderr, "MustParseUnion: empty program\n");
    std::abort();
  }
  for (const ConjunctiveQuery& q : rules) {
    if (q.head().predicate() != rules[0].head().predicate() ||
        q.head().arity() != rules[0].head().arity()) {
      std::fprintf(stderr,
                   "MustParseUnion: all rules must share one head predicate\n");
      std::abort();
    }
  }
  return UnionQuery(std::move(rules));
}

}  // namespace cqac
