#include "ast/comparison.h"

#include <ostream>

namespace cqac {

std::string CompOpToString(CompOp op) {
  switch (op) {
    case CompOp::kLt:
      return "<";
    case CompOp::kLe:
      return "<=";
    case CompOp::kEq:
      return "=";
    case CompOp::kNe:
      return "!=";
    case CompOp::kGe:
      return ">=";
    case CompOp::kGt:
      return ">";
  }
  return "?";
}

CompOp FlipOp(CompOp op) {
  switch (op) {
    case CompOp::kLt:
      return CompOp::kGt;
    case CompOp::kLe:
      return CompOp::kGe;
    case CompOp::kEq:
      return CompOp::kEq;
    case CompOp::kNe:
      return CompOp::kNe;
    case CompOp::kGe:
      return CompOp::kLe;
    case CompOp::kGt:
      return CompOp::kLt;
  }
  return op;
}

CompOp NegateOp(CompOp op) {
  switch (op) {
    case CompOp::kLt:
      return CompOp::kGe;
    case CompOp::kLe:
      return CompOp::kGt;
    case CompOp::kEq:
      return CompOp::kNe;
    case CompOp::kNe:
      return CompOp::kEq;
    case CompOp::kGe:
      return CompOp::kLt;
    case CompOp::kGt:
      return CompOp::kLe;
  }
  return op;
}

bool IsOpenOp(CompOp op) { return op == CompOp::kLt || op == CompOp::kGt; }

bool EvalCompOp(const Rational& a, CompOp op, const Rational& b) {
  switch (op) {
    case CompOp::kLt:
      return a < b;
    case CompOp::kLe:
      return a <= b;
    case CompOp::kEq:
      return a == b;
    case CompOp::kNe:
      return a != b;
    case CompOp::kGe:
      return a >= b;
    case CompOp::kGt:
      return a > b;
  }
  return false;
}

std::string Comparison::ToString() const {
  return lhs_.ToString() + " " + CompOpToString(op_) + " " + rhs_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Comparison& c) {
  return os << c.ToString();
}

}  // namespace cqac
