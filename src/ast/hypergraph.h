#ifndef CQAC_AST_HYPERGRAPH_H_
#define CQAC_AST_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "ast/query.h"

namespace cqac {

/// Structural analysis of a query's join hypergraph.  The paper's
/// conclusion singles out *acyclic* queries as a promising special case
/// with lower complexity; this module supplies the standard machinery:
/// the GYO (Graham / Yu–Özsoyoğlu) reduction decides alpha-acyclicity and
/// yields a join tree when one exists.

/// True iff the query's hypergraph (one hyperedge of variables per
/// ordinary subgoal) is alpha-acyclic: repeatedly removing "ear" atoms —
/// atoms whose variables are each either private to the atom or entirely
/// covered by a single other atom — empties the body.  Comparisons are
/// ignored (they are selections, not joins).
bool IsAcyclic(const ConjunctiveQuery& q);

/// One step of evidence for acyclicity: the order in which GYO removes
/// atoms (indices into `q.body()`), empty when the query is cyclic.
/// A valid elimination order is exactly a reverse topological order of
/// some join tree.
std::vector<int> GyoEliminationOrder(const ConjunctiveQuery& q);

/// Variables shared between at least two ordinary subgoals (the join
/// variables), first-seen order.
std::vector<std::string> JoinVariables(const ConjunctiveQuery& q);

}  // namespace cqac

#endif  // CQAC_AST_HYPERGRAPH_H_
