#ifndef CQAC_AST_HYPERGRAPH_H_
#define CQAC_AST_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "ast/query.h"

namespace cqac {

/// Structural analysis of a query's join hypergraph.  The paper's
/// conclusion singles out *acyclic* queries as a promising special case
/// with lower complexity; this module supplies the standard machinery:
/// the GYO (Graham / Yu–Özsoyoğlu) reduction decides alpha-acyclicity and
/// yields a join tree when one exists.

/// True iff the query's hypergraph (one hyperedge of variables per
/// ordinary subgoal) is alpha-acyclic: repeatedly removing "ear" atoms —
/// atoms whose variables are each either private to the atom or entirely
/// covered by a single other atom — empties the body.  Comparisons are
/// ignored (they are selections, not joins).
bool IsAcyclic(const ConjunctiveQuery& q);

/// One step of evidence for acyclicity: the order in which GYO removes
/// atoms (indices into `q.body()`), empty when the query is cyclic.
/// A valid elimination order is exactly a reverse topological order of
/// some join tree.
std::vector<int> GyoEliminationOrder(const ConjunctiveQuery& q);

/// Variables shared between at least two ordinary subgoals (the join
/// variables), first-seen order.
std::vector<std::string> JoinVariables(const ConjunctiveQuery& q);

/// A join forest over the body atoms of an acyclic query: for each
/// GYO-eliminated ear, the live atom that covered its shared variables
/// becomes its parent.  Atoms whose variables were all private at removal
/// time are roots (`parent == -1`), so a disconnected hypergraph yields
/// one tree per connected component.  `elimination_order` is the GYO
/// removal order (a reverse topological order of the forest: every atom
/// is removed before its parent).  Empty `elimination_order` means the
/// query is cyclic and no forest exists.
struct JoinForest {
  std::vector<int> elimination_order;  // indices into q.body()
  std::vector<int> parent;             // parent[i] for atom i, -1 = root
};

/// Runs the GYO reduction and records, for every ear, which surviving
/// atom witnessed it (the cover of its shared variables).  This is the
/// standard construction of a join tree from a GYO run: the witness
/// relation is exactly the parent relation of a join forest whose every
/// tree satisfies the running-intersection property.
JoinForest GyoJoinForest(const ConjunctiveQuery& q);

}  // namespace cqac

#endif  // CQAC_AST_HYPERGRAPH_H_
