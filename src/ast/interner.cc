#include "ast/interner.h"

namespace cqac {

// Intern/Find/NameOf stay in the header: they sit on the innermost loops of
// query compilation and must inline.  Out-of-line code lives here.

std::string InternerDebugString(const SymbolInterner& interner) {
  std::string out = "{";
  for (uint32_t id = 0; id < interner.size(); ++id) {
    if (id > 0) out += ", ";
    out += std::to_string(id) + ": " + interner.NameOf(id);
  }
  out += "}";
  return out;
}

}  // namespace cqac
