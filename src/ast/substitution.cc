#include "ast/substitution.h"

namespace cqac {

Term Substitution::Apply(const Term& t) const {
  if (!t.IsVariable()) return t;
  auto it = bindings_.find(t.name());
  return it == bindings_.end() ? t : it->second;
}

Atom Substitution::Apply(const Atom& a) const {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(Apply(t));
  return Atom(a.predicate(), std::move(args));
}

Comparison Substitution::Apply(const Comparison& c) const {
  return Comparison(Apply(c.lhs()), c.op(), Apply(c.rhs()));
}

Substitution Substitution::ComposeWith(const Substitution& other) const {
  Substitution result;
  for (const auto& [var, term] : bindings_) {
    result.Bind(var, other.Apply(term));
  }
  for (const auto& [var, term] : other.bindings_) {
    if (!result.IsBound(var)) result.Bind(var, term);
  }
  return result;
}

std::string Substitution::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : bindings_) {
    if (!first) out += ", ";
    first = false;
    out += var + " -> " + term.ToString();
  }
  out += "}";
  return out;
}

}  // namespace cqac
