#include "ast/value.h"

#include <cassert>
#include <cstdlib>
#include <numeric>
#include <ostream>

namespace cqac {

Rational::Rational(int64_t num, int64_t den) {
  assert(den != 0 && "Rational denominator must be nonzero");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const int64_t g = std::gcd(num < 0 ? -num : num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  num_ = num;
  den_ = den;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational Rational::MidpointWith(const Rational& other) const {
  return (*this + other) * Rational(1, 2);
}

bool operator<(const Rational& a, const Rational& b) {
  // Denominators are positive, so cross-multiplication preserves order.
  return a.num_ * b.den_ < b.num_ * a.den_;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

size_t Rational::Hash() const {
  size_t h = std::hash<int64_t>()(num_);
  h ^= std::hash<int64_t>()(den_) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return h;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace cqac
