#ifndef CQAC_AST_TERM_H_
#define CQAC_AST_TERM_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>

#include "ast/value.h"

namespace cqac {

/// An argument position in an atom or a side of an arithmetic comparison:
/// either a variable (named, starting with an upper-case letter by the
/// paper's convention) or a rational constant.
///
/// Terms are small value types; copy freely.
class Term {
 public:
  /// Default-constructs the constant 0.  Needed for containers; prefer the
  /// named factories below.
  Term() : is_variable_(false), constant_(0) {}

  /// A variable with the given name.
  static Term Variable(std::string name) {
    Term t;
    t.is_variable_ = true;
    t.name_ = std::move(name);
    return t;
  }

  /// A rational constant.
  static Term Constant(Rational value) {
    Term t;
    t.is_variable_ = false;
    t.constant_ = value;
    return t;
  }

  /// An integer constant.
  static Term Constant(int64_t value) { return Constant(Rational(value)); }

  bool IsVariable() const { return is_variable_; }
  bool IsConstant() const { return !is_variable_; }

  /// The variable name; only meaningful when `IsVariable()`.
  const std::string& name() const { return name_; }

  /// The constant value; only meaningful when `IsConstant()`.
  const Rational& value() const { return constant_; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return false;
    return a.is_variable_ ? a.name_ == b.name_ : a.constant_ == b.constant_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  /// Arbitrary-but-total order so terms can key ordered containers.
  friend bool operator<(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return a.is_variable_;
    if (a.is_variable_) return a.name_ < b.name_;
    if (a.constant_ == b.constant_) return false;
    return a.constant_ < b.constant_;
  }

  /// Renders the variable name or the constant value.
  std::string ToString() const {
    return is_variable_ ? name_ : constant_.ToString();
  }

  /// Hash compatible with `operator==`.  The variable/constant tag is
  /// mixed in with a splitmix-style combine rather than a plain xor, so a
  /// variable and a constant whose underlying hashes collide still spread
  /// apart, and low-entropy string hashes get diffused.
  size_t Hash() const {
    size_t h = is_variable_ ? std::hash<std::string>()(name_)
                            : constant_.Hash();
    h += is_variable_ ? 0x9e3779b97f4a7c15ULL : 0x517cc1b726220a95ULL;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return h;
  }

 private:
  bool is_variable_;
  std::string name_;
  Rational constant_;
};

std::ostream& operator<<(std::ostream& os, const Term& t);

}  // namespace cqac

template <>
struct std::hash<cqac::Term> {
  size_t operator()(const cqac::Term& t) const { return t.Hash(); }
};

#endif  // CQAC_AST_TERM_H_
