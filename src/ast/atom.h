#ifndef CQAC_AST_ATOM_H_
#define CQAC_AST_ATOM_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "ast/term.h"

namespace cqac {

/// An ordinary (relational) atom `p(t1, ..., tn)`: a predicate name applied
/// to a list of terms.  Used both for query heads and body subgoals.
class Atom {
 public:
  Atom() = default;
  Atom(std::string predicate, std::vector<Term> args)
      : predicate_(std::move(predicate)), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>& mutable_args() { return args_; }
  int arity() const { return static_cast<int>(args_.size()); }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate_ != b.predicate_) return a.predicate_ < b.predicate_;
    return a.args_ < b.args_;
  }

  /// Renders as `p(t1,...,tn)`.
  std::string ToString() const;

  /// Hash compatible with `operator==`.
  size_t Hash() const;

 private:
  std::string predicate_;
  std::vector<Term> args_;
};

std::ostream& operator<<(std::ostream& os, const Atom& a);

}  // namespace cqac

template <>
struct std::hash<cqac::Atom> {
  size_t operator()(const cqac::Atom& a) const { return a.Hash(); }
};

#endif  // CQAC_AST_ATOM_H_
