#ifndef CQAC_AST_QUERY_H_
#define CQAC_AST_QUERY_H_

#include <iosfwd>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast/atom.h"
#include "ast/comparison.h"
#include "ast/substitution.h"
#include "ast/value.h"

namespace cqac {

/// A conjunctive query with arithmetic comparisons (CQAC):
///
///   h(X̄) :- e1(X̄1), ..., ek(X̄k), C1, ..., Cm
///
/// where the `ei` are ordinary (relational) subgoals and the `Ci` are
/// arithmetic comparisons `A θ B` over variables and rational constants.
/// A plain conjunctive query (CQ) is the special case `m == 0`.
///
/// Head variables are "distinguished"; all other variables are
/// "nondistinguished" (existential).  The same class represents queries,
/// view definitions, and the conjuncts of rewritings.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(Atom head, std::vector<Atom> body,
                   std::vector<Comparison> comparisons = {})
      : head_(std::move(head)),
        body_(std::move(body)),
        comparisons_(std::move(comparisons)) {}

  const Atom& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }

  Atom& mutable_head() { return head_; }
  std::vector<Atom>& mutable_body() { return body_; }
  std::vector<Comparison>& mutable_comparisons() { return comparisons_; }

  /// The query's name (head predicate).
  const std::string& name() const { return head_.predicate(); }

  /// True when the query has no arithmetic comparisons (a plain CQ).
  bool IsPlainCQ() const { return comparisons_.empty(); }

  /// True when the head has no arguments.
  bool IsBoolean() const { return head_.args().empty(); }

  /// Distinct head (distinguished) variable names, in first-seen order.
  std::vector<std::string> HeadVariables() const;

  /// Distinct variable names occurring in ordinary subgoals, first-seen
  /// order.
  std::vector<std::string> BodyVariables() const;

  /// Distinct variable names occurring anywhere (head, body, comparisons),
  /// first-seen order.
  std::vector<std::string> AllVariables() const;

  /// Variables that occur in the body but not in the head (the
  /// nondistinguished/existential variables).
  std::vector<std::string> NondistinguishedVariables() const;

  /// Distinct constants occurring anywhere in the query (head, ordinary
  /// subgoals, and comparisons), in ascending order.
  std::vector<Rational> Constants() const;

  /// True when `var` occurs in the head.
  bool IsDistinguished(const std::string& var) const;

  /// Safety per the paper: every head variable occurs in some ordinary
  /// subgoal, and every variable used in a comparison occurs in some
  /// ordinary subgoal.
  bool IsSafe() const;

  /// The query with all comparisons removed (the paper's `Q0`).
  ConjunctiveQuery WithoutComparisons() const;

  /// Applies `s` to head, body, and comparisons.
  ConjunctiveQuery ApplySubstitution(const Substitution& s) const;

  /// A copy whose variables are consistently renamed to `prefix + i`
  /// (i = 0, 1, ...), guaranteeing disjointness from any query that uses a
  /// different prefix.  Returns the renaming through `*renaming_out` when
  /// non-null.
  ConjunctiveQuery RenameVariables(const std::string& prefix,
                                   Substitution* renaming_out = nullptr) const;

  /// Drops duplicate subgoals and duplicate comparisons (preserving order of
  /// first occurrence).  Logically a no-op for set semantics.
  ConjunctiveQuery Deduplicated() const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.head_ == b.head_ && a.body_ == b.body_ &&
           a.comparisons_ == b.comparisons_;
  }
  friend bool operator!=(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return !(a == b);
  }

  /// Renders in the paper's notation:
  /// `q(X) :- a(X,Y), b(Y), X < 7`.
  std::string ToString() const;

 private:
  Atom head_;
  std::vector<Atom> body_;
  std::vector<Comparison> comparisons_;
};

std::ostream& operator<<(std::ostream& os, const ConjunctiveQuery& q);

/// A finite union of CQACs with a common head predicate and arity.  The
/// paper's target rewriting language (Theorem 2): even when a query has an
/// equivalent rewriting, a single CQAC may not suffice (Example 2).
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::vector<ConjunctiveQuery>& mutable_disjuncts() { return disjuncts_; }

  bool empty() const { return disjuncts_.empty(); }
  int size() const { return static_cast<int>(disjuncts_.size()); }

  void Add(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }

  /// Renders one disjunct per line.
  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

std::ostream& operator<<(std::ostream& os, const UnionQuery& q);

}  // namespace cqac

#endif  // CQAC_AST_QUERY_H_
