#include "ast/query.h"

#include <algorithm>
#include <ostream>
#include <unordered_set>

namespace cqac {

namespace {

void CollectVariable(const Term& t, std::vector<std::string>* out,
                     std::unordered_set<std::string>* seen) {
  if (t.IsVariable() && seen->insert(t.name()).second) {
    out->push_back(t.name());
  }
}

}  // namespace

std::vector<std::string> ConjunctiveQuery::HeadVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Term& t : head_.args()) CollectVariable(t, &out, &seen);
  return out;
}

std::vector<std::string> ConjunctiveQuery::BodyVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Atom& a : body_) {
    for (const Term& t : a.args()) CollectVariable(t, &out, &seen);
  }
  return out;
}

std::vector<std::string> ConjunctiveQuery::AllVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Term& t : head_.args()) CollectVariable(t, &out, &seen);
  for (const Atom& a : body_) {
    for (const Term& t : a.args()) CollectVariable(t, &out, &seen);
  }
  for (const Comparison& c : comparisons_) {
    CollectVariable(c.lhs(), &out, &seen);
    CollectVariable(c.rhs(), &out, &seen);
  }
  return out;
}

std::vector<std::string> ConjunctiveQuery::NondistinguishedVariables() const {
  std::unordered_set<std::string> head_vars;
  for (const Term& t : head_.args()) {
    if (t.IsVariable()) head_vars.insert(t.name());
  }
  std::vector<std::string> out;
  for (const std::string& v : BodyVariables()) {
    if (head_vars.find(v) == head_vars.end()) out.push_back(v);
  }
  return out;
}

std::vector<Rational> ConjunctiveQuery::Constants() const {
  std::set<Rational, std::less<Rational>> seen;
  auto collect = [&seen](const Term& t) {
    if (t.IsConstant()) seen.insert(t.value());
  };
  for (const Term& t : head_.args()) collect(t);
  for (const Atom& a : body_) {
    for (const Term& t : a.args()) collect(t);
  }
  for (const Comparison& c : comparisons_) {
    collect(c.lhs());
    collect(c.rhs());
  }
  return std::vector<Rational>(seen.begin(), seen.end());
}

bool ConjunctiveQuery::IsDistinguished(const std::string& var) const {
  for (const Term& t : head_.args()) {
    if (t.IsVariable() && t.name() == var) return true;
  }
  return false;
}

bool ConjunctiveQuery::IsSafe() const {
  std::unordered_set<std::string> body_vars;
  for (const Atom& a : body_) {
    for (const Term& t : a.args()) {
      if (t.IsVariable()) body_vars.insert(t.name());
    }
  }
  for (const Term& t : head_.args()) {
    if (t.IsVariable() && body_vars.find(t.name()) == body_vars.end()) {
      return false;
    }
  }
  for (const Comparison& c : comparisons_) {
    for (const Term* t : {&c.lhs(), &c.rhs()}) {
      if (t->IsVariable() && body_vars.find(t->name()) == body_vars.end()) {
        return false;
      }
    }
  }
  return true;
}

ConjunctiveQuery ConjunctiveQuery::WithoutComparisons() const {
  return ConjunctiveQuery(head_, body_);
}

ConjunctiveQuery ConjunctiveQuery::ApplySubstitution(
    const Substitution& s) const {
  std::vector<Atom> new_body;
  new_body.reserve(body_.size());
  for (const Atom& a : body_) new_body.push_back(s.Apply(a));
  std::vector<Comparison> new_comps;
  new_comps.reserve(comparisons_.size());
  for (const Comparison& c : comparisons_) new_comps.push_back(s.Apply(c));
  return ConjunctiveQuery(s.Apply(head_), std::move(new_body),
                          std::move(new_comps));
}

ConjunctiveQuery ConjunctiveQuery::RenameVariables(
    const std::string& prefix, Substitution* renaming_out) const {
  Substitution renaming;
  int counter = 0;
  for (const std::string& v : AllVariables()) {
    renaming.Bind(v, Term::Variable(prefix + std::to_string(counter++)));
  }
  if (renaming_out != nullptr) *renaming_out = renaming;
  return ApplySubstitution(renaming);
}

ConjunctiveQuery ConjunctiveQuery::Deduplicated() const {
  std::vector<Atom> new_body;
  for (const Atom& a : body_) {
    if (std::find(new_body.begin(), new_body.end(), a) == new_body.end()) {
      new_body.push_back(a);
    }
  }
  std::vector<Comparison> new_comps;
  for (const Comparison& c : comparisons_) {
    if (std::find(new_comps.begin(), new_comps.end(), c) == new_comps.end()) {
      new_comps.push_back(c);
    }
  }
  return ConjunctiveQuery(head_, std::move(new_body), std::move(new_comps));
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = head_.ToString() + " :- ";
  bool first = true;
  for (const Atom& a : body_) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString();
  }
  for (const Comparison& c : comparisons_) {
    if (!first) out += ", ";
    first = false;
    out += c.ToString();
  }
  if (first) out += "true";
  return out;
}

std::ostream& operator<<(std::ostream& os, const ConjunctiveQuery& q) {
  return os << q.ToString();
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (!out.empty()) out += "\n";
    out += q.ToString();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const UnionQuery& q) {
  return os << q.ToString();
}

}  // namespace cqac
