#ifndef CQAC_AST_VALUE_H_
#define CQAC_AST_VALUE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace cqac {

/// An exact rational number with 64-bit numerator and denominator.
///
/// Arithmetic comparisons in CQACs range over an infinite, totally and
/// densely ordered domain (the paper fixes the rationals).  Canonical
/// databases need values *strictly between* any two adjacent constants, so
/// integers are not enough; exact rationals avoid the rounding pitfalls of
/// floating point when constants are close together.
///
/// The representation is always normalized: `den > 0` and
/// `gcd(|num|, den) == 1`.  The value range is deliberately modest (the
/// algorithms only ever take midpoints and +/-1 around query constants), so
/// overflow checking is omitted in favor of simplicity.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// The integer `n`.
  constexpr explicit Rational(int64_t n) : num_(n), den_(1) {}

  /// The fraction `num/den`; normalizes sign and reduces to lowest terms.
  /// `den` must be nonzero.
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  /// True when the value is an integer.
  bool IsInteger() const { return den_ == 1; }

  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  Rational operator-() const;

  /// The arithmetic mean of this value and `other`; by density it lies
  /// strictly between them whenever they differ.
  Rational MidpointWith(const Rational& other) const;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

  /// Renders as `num` for integers and `num/den` otherwise.
  std::string ToString() const;

  template <typename H>
  friend H AbslHashValue(H h, const Rational& r) {
    return H::combine(std::move(h), r.num_, r.den_);
  }

  /// Hash compatible with `operator==`.
  size_t Hash() const;

 private:
  int64_t num_;
  int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace cqac

template <>
struct std::hash<cqac::Rational> {
  size_t operator()(const cqac::Rational& r) const { return r.Hash(); }
};

#endif  // CQAC_AST_VALUE_H_
