#include "ast/term.h"

#include <ostream>

namespace cqac {

std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}

}  // namespace cqac
