#include "ast/hypergraph.h"

#include <set>

namespace cqac {

namespace {

std::vector<std::set<std::string>> EdgeSets(const ConjunctiveQuery& q) {
  std::vector<std::set<std::string>> edges;
  edges.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    std::set<std::string> vars;
    for (const Term& t : a.args()) {
      if (t.IsVariable()) vars.insert(t.name());
    }
    edges.push_back(std::move(vars));
  }
  return edges;
}

}  // namespace

std::vector<int> GyoEliminationOrder(const ConjunctiveQuery& q) {
  std::vector<std::set<std::string>> edges = EdgeSets(q);
  const int n = static_cast<int>(edges.size());
  std::vector<bool> removed(n, false);
  std::vector<int> order;

  bool progress = true;
  while (progress && static_cast<int>(order.size()) < n) {
    progress = false;
    for (int i = 0; i < n; ++i) {
      if (removed[i]) continue;
      // Count, per variable of edge i, how it is shared.
      // i is an ear iff every variable is private (occurs in no other
      // live edge) or the set of its shared variables is contained in one
      // single other live edge.
      std::set<std::string> shared;
      for (const std::string& v : edges[i]) {
        for (int j = 0; j < n; ++j) {
          if (j == i || removed[j]) continue;
          if (edges[j].count(v) > 0) {
            shared.insert(v);
            break;
          }
        }
      }
      bool is_ear = shared.empty();
      if (!is_ear) {
        for (int j = 0; j < n && !is_ear; ++j) {
          if (j == i || removed[j]) continue;
          bool covered = true;
          for (const std::string& v : shared) {
            if (edges[j].count(v) == 0) {
              covered = false;
              break;
            }
          }
          if (covered) is_ear = true;
        }
      }
      if (is_ear) {
        removed[i] = true;
        order.push_back(i);
        progress = true;
      }
    }
  }
  if (static_cast<int>(order.size()) < n) return {};  // Cyclic.
  return order;
}

bool IsAcyclic(const ConjunctiveQuery& q) {
  if (q.body().empty()) return true;
  return !GyoEliminationOrder(q).empty();
}

std::vector<std::string> JoinVariables(const ConjunctiveQuery& q) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  const std::vector<std::set<std::string>> edges = EdgeSets(q);
  for (size_t i = 0; i < edges.size(); ++i) {
    for (const std::string& v : edges[i]) {
      if (seen.count(v) > 0) continue;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (j == i) continue;
        if (edges[j].count(v) > 0) {
          out.push_back(v);
          seen.insert(v);
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace cqac
