#include "ast/hypergraph.h"

#include <set>

namespace cqac {

namespace {

std::vector<std::set<std::string>> EdgeSets(const ConjunctiveQuery& q) {
  std::vector<std::set<std::string>> edges;
  edges.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    std::set<std::string> vars;
    for (const Term& t : a.args()) {
      if (t.IsVariable()) vars.insert(t.name());
    }
    edges.push_back(std::move(vars));
  }
  return edges;
}

}  // namespace

namespace {

/// The GYO reduction, recording per ear the live edge that witnessed it
/// (covered its shared variables), or -1 when every variable was private.
/// Returns an empty order when the reduction gets stuck (cyclic query).
JoinForest GyoReduce(const ConjunctiveQuery& q) {
  std::vector<std::set<std::string>> edges = EdgeSets(q);
  const int n = static_cast<int>(edges.size());
  std::vector<bool> removed(n, false);
  JoinForest forest;
  forest.parent.assign(n, -1);

  bool progress = true;
  while (progress && static_cast<int>(forest.elimination_order.size()) < n) {
    progress = false;
    for (int i = 0; i < n; ++i) {
      if (removed[i]) continue;
      // i is an ear iff every variable is private (occurs in no other
      // live edge) or the set of its shared variables is contained in one
      // single other live edge — which becomes its parent in the forest.
      std::set<std::string> shared;
      for (const std::string& v : edges[i]) {
        for (int j = 0; j < n; ++j) {
          if (j == i || removed[j]) continue;
          if (edges[j].count(v) > 0) {
            shared.insert(v);
            break;
          }
        }
      }
      bool is_ear = shared.empty();
      int witness = -1;
      if (!is_ear) {
        for (int j = 0; j < n && !is_ear; ++j) {
          if (j == i || removed[j]) continue;
          bool covered = true;
          for (const std::string& v : shared) {
            if (edges[j].count(v) == 0) {
              covered = false;
              break;
            }
          }
          if (covered) {
            is_ear = true;
            witness = j;
          }
        }
      }
      if (is_ear) {
        removed[i] = true;
        forest.parent[i] = witness;
        forest.elimination_order.push_back(i);
        progress = true;
      }
    }
  }
  if (static_cast<int>(forest.elimination_order.size()) < n) {
    return JoinForest{};  // Cyclic.
  }
  return forest;
}

}  // namespace

std::vector<int> GyoEliminationOrder(const ConjunctiveQuery& q) {
  return GyoReduce(q).elimination_order;
}

JoinForest GyoJoinForest(const ConjunctiveQuery& q) { return GyoReduce(q); }

bool IsAcyclic(const ConjunctiveQuery& q) {
  if (q.body().empty()) return true;
  return !GyoEliminationOrder(q).empty();
}

std::vector<std::string> JoinVariables(const ConjunctiveQuery& q) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  const std::vector<std::set<std::string>> edges = EdgeSets(q);
  for (size_t i = 0; i < edges.size(); ++i) {
    for (const std::string& v : edges[i]) {
      if (seen.count(v) > 0) continue;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (j == i) continue;
        if (edges[j].count(v) > 0) {
          out.push_back(v);
          seen.insert(v);
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace cqac
