#ifndef CQAC_AST_COMPARISON_H_
#define CQAC_AST_COMPARISON_H_

#include <iosfwd>
#include <string>

#include "ast/term.h"

namespace cqac {

/// The comparison operator of an arithmetic-comparison subgoal.
///
/// The paper's rewriting language uses `<, <=, =, >=, >` ("open" operators
/// are `<`/`>`, "closed" ones `<=`/`>=`).  `!=` is additionally supported by
/// the constraint solver because negating `=` during refutation-style
/// implication checks produces it.
enum class CompOp {
  kLt,   // <
  kLe,   // <=
  kEq,   // =
  kNe,   // !=
  kGe,   // >=
  kGt,   // >
};

/// The textual form of `op` (`"<"`, `"<="`, ...).
std::string CompOpToString(CompOp op);

/// The operator with sides swapped: `a op b` iff `b Flip(op) a`.
CompOp FlipOp(CompOp op);

/// The logical negation: `a op b` iff NOT `a Negate(op) b`.
CompOp NegateOp(CompOp op);

/// True for `<` and `>` (the paper's "open" comparisons).
bool IsOpenOp(CompOp op);

/// Evaluates `a op b` on concrete rational values.
bool EvalCompOp(const Rational& a, CompOp op, const Rational& b);

/// An arithmetic-comparison subgoal `lhs op rhs` where each side is a
/// variable or a rational constant.
class Comparison {
 public:
  Comparison() : op_(CompOp::kEq) {}
  Comparison(Term lhs, CompOp op, Term rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}

  const Term& lhs() const { return lhs_; }
  CompOp op() const { return op_; }
  const Term& rhs() const { return rhs_; }

  /// The same constraint with sides swapped (`X < 5` becomes `5 > X`).
  Comparison Flipped() const { return Comparison(rhs_, FlipOp(op_), lhs_); }

  /// The logical negation (`X < 5` becomes `X >= 5`).
  Comparison Negated() const { return Comparison(lhs_, NegateOp(op_), rhs_); }

  friend bool operator==(const Comparison& a, const Comparison& b) {
    return a.op_ == b.op_ && a.lhs_ == b.lhs_ && a.rhs_ == b.rhs_;
  }
  friend bool operator!=(const Comparison& a, const Comparison& b) {
    return !(a == b);
  }
  friend bool operator<(const Comparison& a, const Comparison& b) {
    if (a.lhs_ != b.lhs_) return a.lhs_ < b.lhs_;
    if (a.op_ != b.op_) return a.op_ < b.op_;
    return a.rhs_ < b.rhs_;
  }

  /// Renders as `lhs op rhs`, e.g. `X <= 7`.
  std::string ToString() const;

 private:
  Term lhs_;
  CompOp op_;
  Term rhs_;
};

std::ostream& operator<<(std::ostream& os, const Comparison& c);

}  // namespace cqac

#endif  // CQAC_AST_COMPARISON_H_
