#include "ast/atom.h"

#include <ostream>

namespace cqac {

std::string Atom::ToString() const {
  std::string out = predicate_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ",";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

size_t Atom::Hash() const {
  size_t h = std::hash<std::string>()(predicate_);
  for (const Term& t : args_) {
    h ^= t.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Atom& a) {
  return os << a.ToString();
}

}  // namespace cqac
