#ifndef CQAC_AST_INTERNER_H_
#define CQAC_AST_INTERNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cqac {

/// Maps strings (variable and predicate names) to dense `uint32_t` ids.
///
/// The compiled containment/evaluation engine lowers the string-based AST
/// into flat integer form once per check; every later operation — binding a
/// variable, matching a predicate, indexing a relation — is then an array
/// access instead of a string-map lookup.  Ids are assigned densely in
/// first-intern order, so they double as indices into side arrays
/// (binding stores, candidate lists, value slots).
///
/// Not thread-safe; each compilation owns its interner.
class SymbolInterner {
 public:
  SymbolInterner() = default;

  /// The id of `name`, interning it if new.  Ids are 0, 1, 2, ... in
  /// first-intern order.
  uint32_t Intern(const std::string& name) {
    auto [it, inserted] = ids_.emplace(name, static_cast<uint32_t>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  /// The id of `name` if already interned, else `kNotFound`.
  uint32_t Find(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? kNotFound : it->second;
  }

  /// The name of `id`; `id` must have been returned by Intern.
  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  /// Number of distinct interned symbols (== the smallest unused id).
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

  /// Drops every symbol; previously returned ids become invalid.
  void Clear() {
    ids_.clear();
    names_.clear();
  }

  static constexpr uint32_t kNotFound = UINT32_MAX;

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

/// Renders as `{0: X, 1: Y}` for diagnostics.
std::string InternerDebugString(const SymbolInterner& interner);

}  // namespace cqac

#endif  // CQAC_AST_INTERNER_H_
