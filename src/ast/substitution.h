#ifndef CQAC_AST_SUBSTITUTION_H_
#define CQAC_AST_SUBSTITUTION_H_

#include <map>
#include <string>

#include "ast/atom.h"
#include "ast/comparison.h"
#include "ast/term.h"

namespace cqac {

/// A mapping from variable names to terms.  Applying a substitution leaves
/// unmapped variables and all constants unchanged.  Substitutions are the
/// workhorse of homomorphism/containment-mapping machinery: a containment
/// mapping maps variables to variables-or-constants and fixes constants.
class Substitution {
 public:
  Substitution() = default;

  /// Binds `var` to `term`, overwriting any previous binding.
  void Bind(const std::string& var, const Term& term) {
    bindings_[var] = term;
  }

  /// True when `var` has a binding.
  bool IsBound(const std::string& var) const {
    return bindings_.find(var) != bindings_.end();
  }

  /// The binding of `var`; only meaningful when `IsBound(var)`.
  const Term& Lookup(const std::string& var) const {
    return bindings_.at(var);
  }

  /// The binding of `var`, or nullptr — one map probe instead of the
  /// IsBound-then-Lookup pair.
  const Term* Find(const std::string& var) const {
    auto it = bindings_.find(var);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  /// Removes the binding of `var`, if any.
  void Unbind(const std::string& var) { bindings_.erase(var); }

  int size() const { return static_cast<int>(bindings_.size()); }
  bool empty() const { return bindings_.empty(); }

  const std::map<std::string, Term>& bindings() const { return bindings_; }

  /// Applies the substitution to a term/atom/comparison.
  Term Apply(const Term& t) const;
  Atom Apply(const Atom& a) const;
  Comparison Apply(const Comparison& c) const;

  /// The composition `other ∘ this`: first this substitution, then `other`
  /// applied to the result (and to variables this one leaves unmapped).
  Substitution ComposeWith(const Substitution& other) const;

  /// Renders as `{X -> a, Y -> 3}`.
  std::string ToString() const;

 private:
  std::map<std::string, Term> bindings_;
};

}  // namespace cqac

#endif  // CQAC_AST_SUBSTITUTION_H_
