#!/usr/bin/env bash
# End-to-end smoke of the rewrite service (docs/SERVICE.md): starts
# cqacd on a Unix socket, checks that cqacc's job-mode output is
# byte-identical to `cqacsh --serve-batch` for the same stream, runs a
# small concurrent load, then SIGTERMs the daemon and checks the
# graceful drain (batch footer printed, exit 0).
#
# Usage:  tools/server_smoke.sh [build-dir]     # default: build
set -euo pipefail

build="${1:-build}"
cd "$(dirname "$0")/.."

for tool in cqacd cqacc cqacsh; do
  if [ ! -x "$build/tools/$tool" ]; then
    echo "error: $build/tools/$tool not built" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
sock="$work/cqac.sock"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

cat > "$work/jobs.txt" <<'EOF'
view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z
query q(A) :- r(A), s(A,A), A <= 8
run
view w(A,B) :- e(A,B), A <= B
query q2(X,Y) :- e(X,Y), X <= Y
run
query broken(
run
view lone(A) :- p(A)
EOF

"$build/tools/cqacd" --unix "$sock" > "$work/cqacd.out" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 50); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "error: cqacd did not come up" >&2; cat "$work/cqacd.out" >&2; exit 1; }

# 1. Byte-identical bodies: cqacc output == cqacsh --serve-batch output
#    minus the two footer lines.  Both exit 1 (the stream contains two
#    deliberate job-level errors), which is itself part of the parity.
cqacc_status=0
"$build/tools/cqacc" --unix "$sock" < "$work/jobs.txt" > "$work/cqacc.out" || cqacc_status=$?
cqacsh_status=0
"$build/tools/cqacsh" --serve-batch < "$work/jobs.txt" > "$work/cqacsh.out" || cqacsh_status=$?
head -n -2 "$work/cqacsh.out" > "$work/cqacsh.body"
if ! diff -u "$work/cqacsh.body" "$work/cqacc.out"; then
  echo "error: service response bodies differ from --serve-batch" >&2
  exit 1
fi
if [ "$cqacc_status" != "$cqacsh_status" ]; then
  echo "error: exit codes differ: cqacc=$cqacc_status cqacsh=$cqacsh_status" >&2
  exit 1
fi

# 2. Concurrent load: 8 connections, every request answered.
"$build/tools/cqacc" --unix "$sock" --load 64 --concurrency 8 > "$work/load.json"
grep -q '"completed": 64' "$work/load.json" || {
  echo "error: load run incomplete: $(cat "$work/load.json")" >&2
  exit 1
}

# 2b. Observability control plane on the live daemon: a get_metrics
#     scrape must serve Prometheus text with the per-tier SLO summary,
#     and dump_telemetry must lead with its meta line.  Span assertions
#     are gated on the build actually compiling tracing in, so this
#     passes unchanged on a -DCQAC_TRACING=OFF leg.
"$build/tools/cqacc" --unix "$sock" --get-metrics > "$work/metrics.txt"
grep -q '^# TYPE cqac_server_slo_request_latency_ns summary' "$work/metrics.txt" || {
  echo "error: get_metrics missing the SLO summary header:" >&2
  cat "$work/metrics.txt" >&2
  exit 1
}
grep -q 'cqac_server_slo_request_latency_ns{tier=' "$work/metrics.txt" || {
  echo "error: get_metrics missing per-tier SLO series" >&2
  exit 1
}
grep -q '^cqac_server_requests_accepted_total ' "$work/metrics.txt" || {
  echo "error: get_metrics missing the accepted-requests counter" >&2
  exit 1
}

"$build/tools/cqacc" --unix "$sock" --dump-telemetry > "$work/telemetry.txt"
head -1 "$work/telemetry.txt" | grep -q '"event": "telemetry"' || {
  echo "error: dump_telemetry meta line missing:" >&2
  head -3 "$work/telemetry.txt" >&2
  exit 1
}
compiled_in=false
if head -1 "$work/telemetry.txt" | grep -q '"tracing_compiled_in": true'; then
  compiled_in=true
  grep -q '"name": "server.job"' "$work/telemetry.txt" || {
    echo "error: dump_telemetry has no server.job span after a load run" >&2
    exit 1
  }
fi

# 3. Graceful drain: SIGTERM -> batch footer on stdout, exit 0.
kill -TERM "$daemon_pid"
drain_status=0
wait "$daemon_pid" || drain_status=$?
if [ "$drain_status" != 0 ]; then
  echo "error: cqacd exited $drain_status on SIGTERM" >&2
  cat "$work/cqacd.out" >&2
  exit 1
fi
grep -q '^batch: 68 jobs' "$work/cqacd.out" || {
  echo "error: drain footer missing or wrong:" >&2
  cat "$work/cqacd.out" >&2
  exit 1
}

# 4. Catalog-enabled pass: the same stream served through cqacd
#    --catalog must stay byte-identical, twice in a row (the second run
#    replays from the semantic cache), and a set_catalog round trip must
#    install a default view set for query-only requests.
sock2="$work/cqac_catalog.sock"
"$build/tools/cqacd" --unix "$sock2" --catalog > "$work/cqacd_catalog.out" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
  [ -S "$sock2" ] && break
  sleep 0.1
done
[ -S "$sock2" ] || { echo "error: cqacd --catalog did not come up" >&2; cat "$work/cqacd_catalog.out" >&2; exit 1; }

for pass in cold warm; do
  pass_status=0
  "$build/tools/cqacc" --unix "$sock2" < "$work/jobs.txt" \
    > "$work/cqacc_catalog_$pass.out" || pass_status=$?
  if ! diff -u "$work/cqacsh.body" "$work/cqacc_catalog_$pass.out"; then
    echo "error: catalog $pass responses differ from --serve-batch" >&2
    exit 1
  fi
  if [ "$pass_status" != "$cqacsh_status" ]; then
    echo "error: catalog $pass exit code $pass_status != $cqacsh_status" >&2
    exit 1
  fi
done

cat > "$work/views.txt" <<'EOF'
view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z
EOF
echo "query q(A) :- r(A), s(A,A), A <= 8" > "$work/query_only.txt"
"$build/tools/cqacc" --unix "$sock2" --set-catalog "$work/views.txt" \
  < "$work/query_only.txt" > "$work/query_only.out" 2> "$work/set_catalog.err"
grep -q 'catalog set: 1 view' "$work/set_catalog.err" || {
  echo "error: set_catalog ack missing:" >&2
  cat "$work/set_catalog.err" >&2
  exit 1
}
grep -q 'equivalent rewriting' "$work/query_only.out" || {
  echo "error: query-only job not served by the default catalog:" >&2
  cat "$work/query_only.out" >&2
  exit 1
}

kill -TERM "$daemon_pid"
wait "$daemon_pid" || {
  echo "error: cqacd --catalog exited non-zero on SIGTERM" >&2
  cat "$work/cqacd_catalog.out" >&2
  exit 1
}

# 5. Slow-request attribution (the acceptance scenario): two concurrent
#    clients against a --slow-log daemon, one of them a deadline-doomed
#    heavy request.  With session tracing never enabled, the slow log
#    must still carry that request's trace id, tier, per-phase wall
#    times, and (when tracing is compiled in) its flight-recorder spans.
sock3="$work/cqac_slow.sock"
slow_log="$work/slow.jsonl"
"$build/tools/cqacd" --unix "$sock3" --slow-log "$slow_log" \
  > "$work/cqacd_slow.out" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
  [ -S "$sock3" ] && break
  sleep 0.1
done
[ -S "$sock3" ] || { echo "error: cqacd --slow-log did not come up" >&2; cat "$work/cqacd_slow.out" >&2; exit 1; }

cat > "$work/heavy.txt" <<'EOF'
view v(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F), r6(F,G)
query q(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F), r6(F,G), A <= 8
EOF
"$build/tools/cqacc" --unix "$sock3" --load 16 --concurrency 1 \
  > "$work/slow_load.json" &
load_pid=$!
heavy_status=0
"$build/tools/cqacc" --unix "$sock3" --deadline-ms 40 < "$work/heavy.txt" \
  > "$work/heavy.out" 2>&1 || heavy_status=$?
wait "$load_pid" || { echo "error: concurrent load client failed" >&2; exit 1; }
[ "$heavy_status" != 0 ] || {
  echo "error: heavy request finished under a 40 ms deadline?" >&2
  cat "$work/heavy.out" >&2
  exit 1
}
grep -q 'deadline' "$work/heavy.out" || {
  echo "error: heavy request did not report a deadline error:" >&2
  cat "$work/heavy.out" >&2
  exit 1
}
for key in '"event": "slow_request"' '"trace_id": "' '"tier": ' \
           '"tier_reason": ' '"phase1_ns": ' '"enumeration_ns": ' \
           '"latency_ns": '; do
  grep -qF "$key" "$slow_log" || {
    echo "error: slow log missing $key:" >&2
    cat "$slow_log" >&2
    exit 1
  }
done
if [ "$compiled_in" = true ]; then
  grep -q '"event": "span"' "$slow_log" || {
    echo "error: slow log carries no flight-recorder spans:" >&2
    cat "$slow_log" >&2
    exit 1
  }
  grep -q '"name": "structure.tier"' "$slow_log" || {
    echo "error: slow log excerpt lost the structure.tier span:" >&2
    cat "$slow_log" >&2
    exit 1
  }
fi

kill -TERM "$daemon_pid"
wait "$daemon_pid" || {
  echo "error: cqacd --slow-log exited non-zero on SIGTERM" >&2
  cat "$work/cqacd_slow.out" >&2
  exit 1
}

echo "server smoke: OK (parity, 8-way load, graceful drain, catalog," \
     "metrics scrape, telemetry dump, slow-request log)"
