#!/usr/bin/env bash
# End-to-end smoke of the rewrite service (docs/SERVICE.md): starts
# cqacd on a Unix socket, checks that cqacc's job-mode output is
# byte-identical to `cqacsh --serve-batch` for the same stream, runs a
# small concurrent load, then SIGTERMs the daemon and checks the
# graceful drain (batch footer printed, exit 0).
#
# Usage:  tools/server_smoke.sh [build-dir]     # default: build
set -euo pipefail

build="${1:-build}"
cd "$(dirname "$0")/.."

for tool in cqacd cqacc cqacsh; do
  if [ ! -x "$build/tools/$tool" ]; then
    echo "error: $build/tools/$tool not built" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
sock="$work/cqac.sock"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

cat > "$work/jobs.txt" <<'EOF'
view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z
query q(A) :- r(A), s(A,A), A <= 8
run
view w(A,B) :- e(A,B), A <= B
query q2(X,Y) :- e(X,Y), X <= Y
run
query broken(
run
view lone(A) :- p(A)
EOF

"$build/tools/cqacd" --unix "$sock" > "$work/cqacd.out" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 50); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "error: cqacd did not come up" >&2; cat "$work/cqacd.out" >&2; exit 1; }

# 1. Byte-identical bodies: cqacc output == cqacsh --serve-batch output
#    minus the two footer lines.  Both exit 1 (the stream contains two
#    deliberate job-level errors), which is itself part of the parity.
cqacc_status=0
"$build/tools/cqacc" --unix "$sock" < "$work/jobs.txt" > "$work/cqacc.out" || cqacc_status=$?
cqacsh_status=0
"$build/tools/cqacsh" --serve-batch < "$work/jobs.txt" > "$work/cqacsh.out" || cqacsh_status=$?
head -n -2 "$work/cqacsh.out" > "$work/cqacsh.body"
if ! diff -u "$work/cqacsh.body" "$work/cqacc.out"; then
  echo "error: service response bodies differ from --serve-batch" >&2
  exit 1
fi
if [ "$cqacc_status" != "$cqacsh_status" ]; then
  echo "error: exit codes differ: cqacc=$cqacc_status cqacsh=$cqacsh_status" >&2
  exit 1
fi

# 2. Concurrent load: 8 connections, every request answered.
"$build/tools/cqacc" --unix "$sock" --load 64 --concurrency 8 > "$work/load.json"
grep -q '"completed": 64' "$work/load.json" || {
  echo "error: load run incomplete: $(cat "$work/load.json")" >&2
  exit 1
}

# 3. Graceful drain: SIGTERM -> batch footer on stdout, exit 0.
kill -TERM "$daemon_pid"
drain_status=0
wait "$daemon_pid" || drain_status=$?
if [ "$drain_status" != 0 ]; then
  echo "error: cqacd exited $drain_status on SIGTERM" >&2
  cat "$work/cqacd.out" >&2
  exit 1
fi
grep -q '^batch: 68 jobs' "$work/cqacd.out" || {
  echo "error: drain footer missing or wrong:" >&2
  cat "$work/cqacd.out" >&2
  exit 1
}

# 4. Catalog-enabled pass: the same stream served through cqacd
#    --catalog must stay byte-identical, twice in a row (the second run
#    replays from the semantic cache), and a set_catalog round trip must
#    install a default view set for query-only requests.
sock2="$work/cqac_catalog.sock"
"$build/tools/cqacd" --unix "$sock2" --catalog > "$work/cqacd_catalog.out" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
  [ -S "$sock2" ] && break
  sleep 0.1
done
[ -S "$sock2" ] || { echo "error: cqacd --catalog did not come up" >&2; cat "$work/cqacd_catalog.out" >&2; exit 1; }

for pass in cold warm; do
  pass_status=0
  "$build/tools/cqacc" --unix "$sock2" < "$work/jobs.txt" \
    > "$work/cqacc_catalog_$pass.out" || pass_status=$?
  if ! diff -u "$work/cqacsh.body" "$work/cqacc_catalog_$pass.out"; then
    echo "error: catalog $pass responses differ from --serve-batch" >&2
    exit 1
  fi
  if [ "$pass_status" != "$cqacsh_status" ]; then
    echo "error: catalog $pass exit code $pass_status != $cqacsh_status" >&2
    exit 1
  fi
done

cat > "$work/views.txt" <<'EOF'
view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z
EOF
echo "query q(A) :- r(A), s(A,A), A <= 8" > "$work/query_only.txt"
"$build/tools/cqacc" --unix "$sock2" --set-catalog "$work/views.txt" \
  < "$work/query_only.txt" > "$work/query_only.out" 2> "$work/set_catalog.err"
grep -q 'catalog set: 1 view' "$work/set_catalog.err" || {
  echo "error: set_catalog ack missing:" >&2
  cat "$work/set_catalog.err" >&2
  exit 1
}
grep -q 'equivalent rewriting' "$work/query_only.out" || {
  echo "error: query-only job not served by the default catalog:" >&2
  cat "$work/query_only.out" >&2
  exit 1
}

kill -TERM "$daemon_pid"
wait "$daemon_pid" || {
  echo "error: cqacd --catalog exited non-zero on SIGTERM" >&2
  cat "$work/cqacd_catalog.out" >&2
  exit 1
}

echo "server smoke: OK (parity, 8-way load, graceful drain, catalog)"
