// cqacc: client and load generator for cqacd (docs/SERVICE.md).
//
// Job mode (default) reads the `--serve-batch` job-stream format from
// stdin, submits one request per block, and prints the response bodies in
// input order — byte-identical to `cqacsh --serve-batch` output for the
// same stream, minus the batch footer:
//
//   $ ./build/tools/cqacc --unix /tmp/cqac.sock < jobs.txt
//
// Load mode (`--load N`) submits N copies of a fixed job over
// `--concurrency C` connections (each connection runs its requests
// synchronously; concurrency comes from the connections) and prints a
// one-line JSON throughput record:
//
//   $ ./build/tools/cqacc --port 38651 --load 1000 --concurrency 8

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/request_context.h"
#include "server/json.h"
#include "server/protocol.h"

namespace {

using cqac::server::AppendJsonString;
using cqac::server::EncodeFrame;
using cqac::server::Frame;
using cqac::server::FrameDecoder;
using cqac::server::JobOutcome;
using cqac::server::ParseServiceResponse;
using cqac::server::ResponseStatus;
using cqac::server::ResponseStatusName;
using cqac::server::ServiceResponse;

constexpr char kDefaultLoadJob[] =
    "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
    "query q(A) :- r(A), s(A,A), A <= 8.\n";

void PrintUsage(std::ostream& out) {
  out << "usage: cqacc [--unix PATH | --port N [--host H]]\n"
         "             [--deadline-ms N] [--echo] [--set-catalog FILE]\n"
         "             [--load N [--concurrency C] [--job-file FILE]]\n"
         "             [--get-metrics] [--dump-telemetry [TRACE_ID]]\n"
         "             [--help]\n"
         "  --unix PATH      connect to a Unix-domain socket\n"
         "  --port N         connect to TCP port N (default host 127.0.0.1)\n"
         "  --host H         TCP host for --port\n"
         "  --deadline-ms N  attach this deadline to every request\n"
         "  --echo           ask the server to echo job definitions\n"
         "  --set-catalog FILE\n"
         "                   first send a set_catalog request installing\n"
         "                   FILE (a block of `view` directives) as the\n"
         "                   server's default catalog (needs cqacd\n"
         "                   --catalog)\n"
         "  --load N         load mode: submit N copies of a fixed job and\n"
         "                   print a one-line JSON record with throughput\n"
         "                   and p50/p95/p99 request latency\n"
         "  --concurrency C  connections used in load mode (default 1)\n"
         "  --job-file FILE  job block submitted in load mode (default: a\n"
         "                   built-in two-view job)\n"
         "  --get-metrics    fetch the server's metrics registry in\n"
         "                   Prometheus text format and print it\n"
         "  --dump-telemetry [TRACE_ID]\n"
         "                   fetch the server's flight-recorder excerpt as\n"
         "                   JSON lines, optionally filtered to one\n"
         "                   32-hex-character trace id\n"
         "  --help           this message\n"
         "\n"
         "Without --load, cqacc reads the cqacsh --serve-batch job-stream\n"
         "format from stdin and prints one result block per job, in input\n"
         "order, byte-identical to the batch driver's blocks.  Every\n"
         "request is stamped with a fresh 128-bit trace id that the server\n"
         "binds to its spans and echoes in the response; load mode's JSON\n"
         "record gains a per-tier latency breakdown (stderr prints the\n"
         "human-readable table).\n";
}

bool ParseNonNegative(const std::string& text, int64_t* value) {
  if (text.empty()) return false;
  int64_t parsed = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (parsed > (INT64_MAX - (c - '0')) / 10) return false;
    parsed = parsed * 10 + (c - '0');
  }
  *value = parsed;
  return true;
}

struct Endpoint {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
};

/// Opens a connection to the server; -1 + `error` on failure.
int Connect(const Endpoint& endpoint, std::string* error) {
  if (!endpoint.unix_path.empty()) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      *error = "Unix socket path too long: " + endpoint.unix_path;
      return -1;
    }
    memcpy(addr.sun_path, endpoint.unix_path.c_str(),
           endpoint.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) < 0) {
      *error = "cannot connect to unix:" + endpoint.unix_path + ": " +
               strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host '" + endpoint.host + "' (numeric IPv4 only)";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) < 0) {
    *error = "cannot connect to tcp:" + endpoint.host + ":" +
             std::to_string(endpoint.port) + ": " + strerror(errno);
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string BuildRequestBody(const std::string& job_text, int64_t index,
                             int64_t deadline_ms, bool echo,
                             const cqac::obs::TraceId& trace_id) {
  std::string body = "{\"job\": ";
  AppendJsonString(&body, job_text);
  body += ", \"index\": " + std::to_string(index);
  if (deadline_ms > 0) {
    body += ", \"deadline_ms\": " + std::to_string(deadline_ms);
  }
  if (echo) body += ", \"echo\": true";
  if (!trace_id.IsZero()) {
    body += ", \"trace_id\": \"" + cqac::obs::TraceIdHex(trace_id) + "\"";
  }
  body += "}";
  return body;
}

/// Sends one request and blocks for its response (requests on a cqacc
/// connection are synchronous, so the next frame is the answer).  False +
/// `error` on transport or protocol failure.
bool RoundTrip(int fd, FrameDecoder* decoder, uint64_t id,
               const std::string& body, ServiceResponse* response,
               std::string* error) {
  Frame request;
  request.id = id;
  request.body = body;
  if (!SendAll(fd, EncodeFrame(request))) {
    *error = "send failed: " + std::string(strerror(errno));
    return false;
  }
  char buf[16384];
  for (;;) {
    Frame reply;
    const FrameDecoder::Status status = decoder->Next(&reply, error);
    if (status == FrameDecoder::Status::kError) return false;
    if (status == FrameDecoder::Status::kFrame) {
      if (reply.id != id) {
        *error = "response id " + std::to_string(reply.id) +
                 " does not match request id " + std::to_string(id);
        return false;
      }
      return ParseServiceResponse(reply.body, response, error);
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = "read failed: " + std::string(strerror(errno));
      return false;
    }
    if (n == 0) {
      *error = "server closed the connection mid-request";
      return false;
    }
    decoder->Feed(buf, static_cast<size_t>(n));
  }
}

/// Splits stdin's job-stream format into blocks, preserving each block's
/// text verbatim.  Separator handling mirrors ParseJobStream: blank
/// lines, `run`, and `---` end a block; comments and directives are the
/// block's content (the server parses them — cqacc does not).
std::vector<std::string> SplitJobBlocks(std::istream& in) {
  std::vector<std::string> blocks;
  std::string current;
  bool current_nonempty = false;
  auto flush = [&] {
    if (current_nonempty) blocks.push_back(current);
    current.clear();
    current_nonempty = false;
  };
  std::string line;
  while (std::getline(in, line)) {
    const size_t start = line.find_first_not_of(" \t");
    const std::string word =
        start == std::string::npos
            ? ""
            : line.substr(start, line.find_first_of(" \t", start) - start);
    if (word.empty() || word == "run" || word == "---") {
      flush();
      continue;
    }
    if (word[0] == '%' || word[0] == '#') continue;
    current += line;
    current += '\n';
    current_nonempty = true;
  }
  flush();
  return blocks;
}

/// One completed load-mode request: enough to attribute its latency to
/// the tier the server ran it on and to find it again by trace id.
struct LoadRecord {
  int64_t latency_ns = 0;
  int tier = -1;  // -1 = response carried no tier (errors, old servers)
  cqac::obs::TraceId trace_id;
};

struct LoadTally {
  int64_t ok = 0;
  int64_t deadline_exceeded = 0;
  int64_t rejected = 0;
  int64_t errors = 0;
  int64_t semantic_cache_hits = 0;
  std::vector<LoadRecord> records;  // one entry per completed request
};

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil((p / 100.0) * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

std::string BuildSetCatalogBody(const std::string& views_text) {
  std::string body = "{\"type\": \"set_catalog\", \"job\": ";
  AppendJsonString(&body, views_text);
  body += "}";
  return body;
}

/// Sends one control-plane request (`get_metrics` or `dump_telemetry`)
/// and prints the response body to stdout.  False on any failure.
bool ControlRequest(const Endpoint& endpoint, const std::string& body) {
  std::string error;
  const int fd = Connect(endpoint, &error);
  if (fd < 0) {
    std::cerr << "error: " << error << "\n";
    return false;
  }
  FrameDecoder decoder;
  ServiceResponse response;
  const bool ok = RoundTrip(fd, &decoder, 1, body, &response, &error);
  ::close(fd);
  if (!ok) {
    std::cerr << "error: " << error << "\n";
    return false;
  }
  if (response.status != ResponseStatus::kOk) {
    std::cerr << "error: " << ResponseStatusName(response.status) << ": "
              << response.error << "\n";
    return false;
  }
  std::cout << response.body;
  return true;
}

/// Sends one set_catalog request over its own connection and prints the
/// ack to stderr.  False on any failure.
bool SetCatalog(const Endpoint& endpoint, const std::string& views_text) {
  std::string error;
  const int fd = Connect(endpoint, &error);
  if (fd < 0) {
    std::cerr << "error: " << error << "\n";
    return false;
  }
  FrameDecoder decoder;
  ServiceResponse response;
  const bool ok = RoundTrip(fd, &decoder, 1, BuildSetCatalogBody(views_text),
                            &response, &error);
  ::close(fd);
  if (!ok) {
    std::cerr << "error: set_catalog: " << error << "\n";
    return false;
  }
  if (response.status != ResponseStatus::kOk) {
    std::cerr << "error: set_catalog: "
              << ResponseStatusName(response.status) << ": "
              << response.error << "\n";
    return false;
  }
  std::cerr << "cqacc: " << response.body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint endpoint;
  int64_t deadline_ms = 0;
  bool echo = false;
  int64_t load = -1;
  int64_t concurrency = 1;
  std::string job_file;
  std::string set_catalog_file;
  bool get_metrics = false;
  bool dump_telemetry = false;
  std::string telemetry_filter;

  auto next_value = [&](int* i, const char* flag) -> const char* {
    if (*i + 1 >= argc) {
      std::cerr << "error: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++*i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t value = 0;
    if (arg == "--unix") {
      const char* v = next_value(&i, "--unix");
      if (v == nullptr) return 1;
      endpoint.unix_path = v;
    } else if (arg == "--port") {
      const char* v = next_value(&i, "--port");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &value) || value < 1 || value > 65535) {
        std::cerr << "error: --port needs a port number (1-65535), got '"
                  << v << "'\n";
        return 1;
      }
      endpoint.port = static_cast<int>(value);
    } else if (arg == "--host") {
      const char* v = next_value(&i, "--host");
      if (v == nullptr) return 1;
      endpoint.host = v;
    } else if (arg == "--deadline-ms") {
      const char* v = next_value(&i, "--deadline-ms");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &deadline_ms)) {
        std::cerr << "error: --deadline-ms needs a non-negative integer, "
                     "got '"
                  << v << "'\n";
        return 1;
      }
    } else if (arg == "--echo") {
      echo = true;
    } else if (arg == "--load") {
      const char* v = next_value(&i, "--load");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &load) || load < 1) {
        std::cerr << "error: --load needs a positive integer, got '" << v
                  << "'\n";
        return 1;
      }
    } else if (arg == "--concurrency") {
      const char* v = next_value(&i, "--concurrency");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &concurrency) || concurrency < 1 ||
          concurrency > 1024) {
        std::cerr << "error: --concurrency needs an integer in 1-1024, "
                     "got '"
                  << v << "'\n";
        return 1;
      }
    } else if (arg == "--job-file") {
      const char* v = next_value(&i, "--job-file");
      if (v == nullptr) return 1;
      job_file = v;
    } else if (arg == "--set-catalog") {
      const char* v = next_value(&i, "--set-catalog");
      if (v == nullptr) return 1;
      set_catalog_file = v;
    } else if (arg == "--get-metrics") {
      get_metrics = true;
    } else if (arg == "--dump-telemetry") {
      dump_telemetry = true;
      // The trace-id filter is optional: consume the next argument only
      // when it does not look like another flag.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        telemetry_filter = argv[++i];
        cqac::obs::TraceId parsed;
        if (!cqac::obs::ParseTraceIdHex(telemetry_filter, &parsed)) {
          std::cerr << "error: --dump-telemetry filter must be 32 hex "
                       "characters, got '"
                    << telemetry_filter << "'\n";
          return 1;
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }

  if (endpoint.unix_path.empty() && endpoint.port < 0) {
    std::cerr << "error: no server: pass --unix PATH or --port N\n";
    return 1;
  }

  if (!set_catalog_file.empty()) {
    std::ifstream in(set_catalog_file);
    if (!in) {
      std::cerr << "error: cannot read catalog views file '"
                << set_catalog_file << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!SetCatalog(endpoint, buffer.str())) return 1;
  }

  if (get_metrics) {
    return ControlRequest(endpoint, "{\"type\": \"get_metrics\"}") ? 0 : 1;
  }
  if (dump_telemetry) {
    std::string body = "{\"type\": \"dump_telemetry\"";
    if (!telemetry_filter.empty()) {
      body += ", \"trace_id\": \"" + telemetry_filter + "\"";
    }
    body += "}";
    return ControlRequest(endpoint, body) ? 0 : 1;
  }

  if (load < 0) {
    // Job mode: stdin blocks in, result blocks out, input order.
    const std::vector<std::string> blocks = SplitJobBlocks(std::cin);
    std::string error;
    const int fd = Connect(endpoint, &error);
    if (fd < 0) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    FrameDecoder decoder;
    int status = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
      ServiceResponse response;
      if (!RoundTrip(fd, &decoder, i + 1,
                     BuildRequestBody(blocks[i], i, deadline_ms, echo,
                                      cqac::obs::GenerateTraceId()),
                     &response, &error)) {
        std::cerr << "error: job " << i << ": " << error << "\n";
        status = 1;
        break;
      }
      if (response.status == ResponseStatus::kOk) {
        std::cout << response.body;
        // Exit-code parity with `cqacsh --serve-batch`: job-level parse
        // errors fail the run even though their blocks printed normally.
        if (response.outcome == JobOutcome::kError) status = 1;
      } else {
        std::cerr << "job " << i << ": "
                  << ResponseStatusName(response.status) << ": "
                  << response.error << "\n";
        status = 1;
      }
    }
    ::close(fd);
    return status;
  }

  // Load mode.
  std::string job_text = kDefaultLoadJob;
  if (!job_file.empty()) {
    std::ifstream in(job_file);
    if (!in) {
      std::cerr << "error: cannot read job file '" << job_file << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    job_text = buffer.str();
  }

  std::atomic<int64_t> next_request{0};
  std::vector<LoadTally> tallies(static_cast<size_t>(concurrency));
  std::vector<std::string> failures(static_cast<size_t>(concurrency));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int64_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      std::string error;
      const int fd = Connect(endpoint, &error);
      if (fd < 0) {
        failures[w] = error;
        return;
      }
      FrameDecoder decoder;
      for (;;) {
        const int64_t index = next_request.fetch_add(1);
        if (index >= load) break;
        ServiceResponse response;
        const cqac::obs::TraceId trace_id = cqac::obs::GenerateTraceId();
        const auto request_start = std::chrono::steady_clock::now();
        if (!RoundTrip(fd, &decoder, index + 1,
                       BuildRequestBody(job_text, index, deadline_ms, echo,
                                        trace_id),
                       &response, &error)) {
          failures[w] = error;
          break;
        }
        LoadTally& tally = tallies[w];
        LoadRecord record;
        record.latency_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - request_start)
                .count();
        record.tier = response.tier;
        record.trace_id = trace_id;
        tally.records.push_back(record);
        if (response.from_semantic_cache) ++tally.semantic_cache_hits;
        switch (response.status) {
          case ResponseStatus::kOk:
            if (response.outcome == JobOutcome::kError) {
              ++tally.errors;
            } else {
              ++tally.ok;
            }
            break;
          case ResponseStatus::kDeadlineExceeded:
            ++tally.deadline_exceeded;
            break;
          case ResponseStatus::kOverloaded:
          case ResponseStatus::kShuttingDown:
            ++tally.rejected;
            break;
          case ResponseStatus::kBadRequest:
            ++tally.errors;
            break;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : workers) t.join();
  const auto wall = std::chrono::steady_clock::now() - start;
  const int64_t wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count();

  LoadTally total;
  std::vector<int64_t> latencies;
  // Per-tier latency samples: index 0 = tier "none" (responses without a
  // tier), then tiers 0..2 — the same keying as the server's SLO windows.
  std::vector<int64_t> tier_latencies[4];
  for (const LoadTally& t : tallies) {
    total.ok += t.ok;
    total.deadline_exceeded += t.deadline_exceeded;
    total.rejected += t.rejected;
    total.errors += t.errors;
    total.semantic_cache_hits += t.semantic_cache_hits;
    for (const LoadRecord& r : t.records) {
      latencies.push_back(r.latency_ns);
      const int slot = r.tier >= 0 && r.tier <= 2 ? r.tier + 1 : 0;
      tier_latencies[slot].push_back(r.latency_ns);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  for (std::vector<int64_t>& sample : tier_latencies) {
    std::sort(sample.begin(), sample.end());
  }
  int64_t latency_sum = 0;
  for (const int64_t ns : latencies) latency_sum += ns;
  const int64_t latency_mean =
      latencies.empty()
          ? 0
          : latency_sum / static_cast<int64_t>(latencies.size());
  const int64_t completed =
      total.ok + total.deadline_exceeded + total.rejected + total.errors;
  const double seconds = static_cast<double>(wall_ns) / 1e9;
  const double rps = seconds > 0 ? static_cast<double>(completed) / seconds
                                 : 0.0;
  std::cout << "{\"requests\": " << load << ", \"completed\": " << completed
            << ", \"concurrency\": " << concurrency << ", \"ok\": "
            << total.ok << ", \"deadline_exceeded\": "
            << total.deadline_exceeded << ", \"rejected\": " << total.rejected
            << ", \"errors\": " << total.errors
            << ", \"semantic_cache_hits\": " << total.semantic_cache_hits
            << ", \"wall_ns\": " << wall_ns
            << ", \"requests_per_sec\": " << rps
            << ", \"latency_ns_mean\": " << latency_mean
            << ", \"latency_ns_p50\": " << Percentile(latencies, 50)
            << ", \"latency_ns_p95\": " << Percentile(latencies, 95)
            << ", \"latency_ns_p99\": " << Percentile(latencies, 99)
            << ", \"tiers\": [";
  const char* tier_names[4] = {"none", "0", "1", "2"};
  bool first_tier = true;
  for (int slot = 0; slot < 4; ++slot) {
    const std::vector<int64_t>& sample = tier_latencies[slot];
    if (sample.empty()) continue;
    if (!first_tier) std::cout << ", ";
    first_tier = false;
    std::cout << "{\"tier\": \"" << tier_names[slot]
              << "\", \"requests\": " << sample.size()
              << ", \"latency_ns_p50\": " << Percentile(sample, 50)
              << ", \"latency_ns_p95\": " << Percentile(sample, 95)
              << ", \"latency_ns_p99\": " << Percentile(sample, 99) << "}";
  }
  std::cout << "]}\n";

  // Human-readable per-tier table on stderr; stdout stays one machine-
  // parseable JSON line (tools/run_benches.sh seds it).
  std::cerr << "cqacc: per-tier latency (ns)\n"
            << "  tier  requests       p50       p95       p99\n";
  for (int slot = 0; slot < 4; ++slot) {
    const std::vector<int64_t>& sample = tier_latencies[slot];
    if (sample.empty()) continue;
    char line[128];
    snprintf(line, sizeof(line), "  %-4s %9zu %9lld %9lld %9lld\n",
             tier_names[slot], sample.size(),
             static_cast<long long>(Percentile(sample, 50)),
             static_cast<long long>(Percentile(sample, 95)),
             static_cast<long long>(Percentile(sample, 99)));
    std::cerr << line;
  }

  for (int64_t w = 0; w < concurrency; ++w) {
    if (!failures[w].empty()) {
      std::cerr << "error: worker " << w << ": " << failures[w] << "\n";
      return 1;
    }
  }
  return completed == load ? 0 : 1;
}
