// cqacsh: interactive shell over the cqac library.
//
//   $ ./build/tools/cqacsh
//   cqac> view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.
//   cqac> query q(A) :- r(A), s(A,A), A <= 8.
//   cqac> rewrite verify coalesce
//
// Also scriptable:  ./build/tools/cqacsh < session.cqac

#include <iostream>

#include <unistd.h>

#include "cli/shell.h"

int main() {
  cqac::Shell shell(std::cout);
  shell.ProcessStream(std::cin, /*interactive=*/isatty(STDIN_FILENO) != 0);
  return 0;
}
