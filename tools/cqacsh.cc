// cqacsh: interactive shell over the cqac library.
//
//   $ ./build/tools/cqacsh
//   cqac> view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.
//   cqac> query q(A) :- r(A), s(A,A), A <= 8.
//   cqac> rewrite verify coalesce
//
// Also scriptable:  ./build/tools/cqacsh < session.cqac
//
// Batch service mode: `cqacsh --serve-batch [--jobs N]` reads a stream of
// jobs (blocks of `view`/`query` lines separated by `run`, `---`, or a
// blank line) and executes them concurrently over a work-stealing thread
// pool with a shared containment memo cache, printing results in input
// order.  See src/runtime/batch_driver.h for the format.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "cli/shell.h"
#include "runtime/batch_driver.h"

namespace {

/// Parses a non-negative integer; false on trailing garbage ("4x", "abc").
bool ParseJobs(const char* text, int* jobs) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0 || value > 1 << 20) {
    return false;
  }
  *jobs = static_cast<int>(value);
  return true;
}

void PrintUsage(std::ostream& out) {
  out << "usage: cqacsh [--jobs N] [--serve-batch] [--stats] [--json] "
         "[--help]\n"
         "  --jobs N       worker threads for rewriting (0 = all cores;\n"
         "                 default: all cores; 1 = serial)\n"
         "  --serve-batch  read rewriting jobs from stdin and execute them\n"
         "                 concurrently; otherwise run the interactive shell\n"
         "  --stats        print the Phase-1 breakdown (databases visited /\n"
         "                 pruned / deduped) after each rewrite; with\n"
         "                 --serve-batch, aggregated once per batch\n"
         "  --json         emit a one-line JSON record of outcome and all\n"
         "                 counters (including the Phase-1 memo hit/miss\n"
         "                 split) after each rewrite or batch\n"
         "  --help         this message\n";
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = hardware concurrency.
  bool serve_batch = false;
  bool print_stats = false;
  bool json_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve-batch") {
      serve_batch = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--json") {
      json_stats = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::cerr << "error: --jobs needs a value\n";
        return 1;
      }
      if (!ParseJobs(argv[++i], &jobs)) {
        std::cerr << "error: --jobs needs a non-negative integer, got '"
                  << argv[i] << "'\n";
        return 1;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!ParseJobs(arg.c_str() + 7, &jobs)) {
        std::cerr << "error: --jobs needs a non-negative integer, got '"
                  << arg.substr(7) << "'\n";
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }
  if (jobs < 0) {
    std::cerr << "error: --jobs must be >= 0\n";
    return 1;
  }

  if (serve_batch) {
    cqac::BatchOptions options;
    options.jobs = jobs;
    options.print_stats = print_stats;
    options.json_summary = json_stats;
    const cqac::BatchSummary summary =
        cqac::RunBatch(std::cin, std::cout, options);
    return summary.errors > 0 ? 1 : 0;
  }

  cqac::Shell shell(std::cout);
  shell.set_default_jobs(jobs);
  shell.set_print_stats(print_stats);
  shell.set_json_stats(json_stats);
  shell.ProcessStream(std::cin, /*interactive=*/isatty(STDIN_FILENO) != 0);
  return 0;
}
