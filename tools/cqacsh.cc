// cqacsh: interactive shell over the cqac library.
//
//   $ ./build/tools/cqacsh
//   cqac> view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.
//   cqac> query q(A) :- r(A), s(A,A), A <= 8.
//   cqac> rewrite verify coalesce
//
// Also scriptable:  ./build/tools/cqacsh < session.cqac
//
// Batch service mode: `cqacsh --serve-batch [--jobs N]` reads a stream of
// jobs (blocks of `view`/`query` lines separated by `run`, `---`, or a
// blank line) and executes them concurrently over a work-stealing thread
// pool with a shared containment memo cache, printing results in input
// order.  See src/runtime/batch_driver.h for the format.
//
// Observability: `--trace out.json` records phase-level spans for the
// whole session and writes a Chrome trace-event file on exit (open it in
// chrome://tracing or Perfetto); `--metrics` collects runtime counters
// and dumps the registry on exit.  See docs/OBSERVABILITY.md.

#include <fstream>
#include <iostream>
#include <string>

#include <unistd.h>

#include "cli/shell.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/batch_driver.h"
#include "runtime/thread_pool.h"

namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: cqacsh [--jobs N] [--force-tier N] [--serve-batch]\n"
         "              [--catalog] [--stats] [--json] [--trace FILE]\n"
         "              [--metrics] [--help]\n"
         "  --jobs N       worker threads for rewriting (0 = all cores;\n"
         "                 default: all cores; 1 = serial; max 4096)\n"
         "  --force-tier N pin the structural execution tier for every\n"
         "                 rewrite (0 = general, 1 = semi-interval, 2 =\n"
         "                 acyclic core; -1 = auto, the default).  A forced\n"
         "                 tier applies only when the input is eligible,\n"
         "                 else the run falls back to the general path;\n"
         "                 results are identical across tiers (testing\n"
         "                 hook)\n"
         "  --serve-batch  read rewriting jobs from stdin and execute them\n"
         "                 concurrently; otherwise run the interactive shell\n"
         "  --catalog      with --serve-batch, compile each distinct view\n"
         "                 set once into a shared ViewCatalog whose plans,\n"
         "                 memos, and semantic result cache persist across\n"
         "                 the batch's jobs; results are byte-identical\n"
         "                 (the interactive shell always uses a session\n"
         "                 catalog)\n"
         "  --stats        print the Phase-1 breakdown (databases visited /\n"
         "                 pruned / deduped) and the per-phase wall times\n"
         "                 after each rewrite; with --serve-batch,\n"
         "                 aggregated once per batch\n"
         "  --json         emit a one-line JSON record of outcome and all\n"
         "                 counters (including the Phase-1 memo hit/miss\n"
         "                 split) after each rewrite or batch\n"
         "  --trace FILE   record phase-level spans for the whole session\n"
         "                 and write a Chrome trace-event JSON file on exit\n"
         "                 (view in chrome://tracing or Perfetto)\n"
         "  --metrics      collect runtime metrics (memo hit rates, queue\n"
         "                 depths, wall-time histograms) and dump the\n"
         "                 registry on exit; the shell's `metrics` command\n"
         "                 dumps it on demand\n"
         "  --help         this message\n";
}

/// Writes the session's collected spans as Chrome trace-event JSON.
/// Returns false (after printing an error) when the file cannot be
/// written.
bool WriteTraceFile(const std::string& path) {
  const cqac::obs::CollectedTrace trace = cqac::obs::StopTracing();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write trace file '" << path << "'\n";
    return false;
  }
  cqac::obs::WriteChromeTrace(out, trace);
  if (!cqac::obs::TracingCompiledIn()) {
    std::cerr << "warning: this build has CQAC_TRACING=OFF; the trace is "
                 "empty\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;        // 0 = hardware concurrency.
  int force_tier = -1;  // -1 = auto tier routing.
  bool serve_batch = false;
  bool use_catalog = false;
  bool print_stats = false;
  bool json_stats = false;
  bool metrics = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve-batch") {
      serve_batch = true;
    } else if (arg == "--catalog") {
      use_catalog = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--json") {
      json_stats = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "error: --trace needs a file path\n";
        return 1;
      }
      trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) {
        std::cerr << "error: --trace needs a file path\n";
        return 1;
      }
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::cerr << "error: --jobs needs a value\n";
        return 1;
      }
      std::string error;
      if (!cqac::ThreadPool::ParseJobsFlag(argv[++i], &jobs, &error)) {
        std::cerr << "error: --jobs " << error << "\n";
        return 1;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      std::string error;
      if (!cqac::ThreadPool::ParseJobsFlag(arg.substr(7), &jobs, &error)) {
        std::cerr << "error: --jobs " << error << "\n";
        return 1;
      }
    } else if (arg == "--force-tier" || arg.rfind("--force-tier=", 0) == 0) {
      std::string value;
      if (arg == "--force-tier") {
        if (i + 1 >= argc) {
          std::cerr << "error: --force-tier needs a value\n";
          return 1;
        }
        value = argv[++i];
      } else {
        value = arg.substr(13);
      }
      if (value != "0" && value != "1" && value != "2" && value != "-1") {
        std::cerr << "error: --force-tier expects 0, 1, 2 or -1\n";
        return 1;
      }
      force_tier = std::stoi(value);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }

  if (!trace_path.empty()) cqac::obs::StartTracing();
  if (metrics) cqac::obs::EnableMetrics(true);

  int status = 0;
  if (serve_batch) {
    cqac::BatchOptions options;
    options.jobs = jobs;
    options.rewrite.force_tier = force_tier;
    options.use_catalog = use_catalog;
    options.print_stats = print_stats;
    options.json_summary = json_stats;
    options.print_metrics = metrics;
    const cqac::BatchSummary summary =
        cqac::RunBatch(std::cin, std::cout, options);
    status = summary.errors > 0 ? 1 : 0;
  } else {
    cqac::Shell shell(std::cout);
    shell.set_default_jobs(jobs);
    shell.set_default_force_tier(force_tier);
    shell.set_print_stats(print_stats);
    shell.set_json_stats(json_stats);
    shell.ProcessStream(std::cin, /*interactive=*/isatty(STDIN_FILENO) != 0);
    if (metrics) cqac::obs::MetricsRegistry::Global().DumpText(std::cout);
  }

  if (!trace_path.empty() && !WriteTraceFile(trace_path) && status == 0) {
    status = 1;
  }
  return status;
}
