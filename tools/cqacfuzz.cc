// cqacfuzz: the differential / metamorphic / oracle fuzzer for the
// equivalent-rewriting algorithm.
//
// Per generated (or corpus) case it
//   1. runs every configuration-lattice point (serial vs parallel, Phase-1
//      memo on/off, Phase-2 memo cache on/off, pruned vs legacy order
//      enumeration, compiled vs legacy containment mapping, verify) and
//      diffs the invariant signatures;
//   2. checks any found rewriting against the brute-force semantic oracle
//      (canonical, random, and exhaustive small databases);
//   3. applies a random metamorphic mutation and asserts its declared
//      effect, then puts the mutant through 1-2 as a fresh input.
// Failures are greedily shrunk and written as ready-to-paste corpus files.
//
//   cqacfuzz --minutes 5 --seed 1..4 --corpus tests/corpus --out repros
//   cqacfuzz --iterations 100 --seed 7 --lattice smoke
//   cqacfuzz --inject-fault memo --iterations 50   # must exit 1
//
// Exit status: 0 when every check passed, 1 when a finding was written,
// 2 on usage errors.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "runtime/memo_cache.h"
#include "rewriting/structure.h"
#include "testing/corpus.h"
#include "testing/differential.h"
#include "testing/mutators.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"
#include "workload/generator.h"
#include "workload/prand.h"

namespace cqac {
namespace testing {
namespace {

struct FuzzFlags {
  uint64_t seed_lo = 1;
  uint64_t seed_hi = 1;
  int64_t iterations = 0;  // per seed; 0 = default (25) unless time-boxed
  double seconds = 0;      // wall-clock budget; 0 = none
  std::string corpus_dir;
  std::string out_dir = "cqacfuzz-out";
  std::string lattice = "full";
  std::string inject_fault = "none";
  int jobs = 4;            // thread count of the parallel lattice points
  int dump_workloads = 0;  // corpus-seeding mode: emit N cases and exit
  bool tiers = false;      // draw tier-targeted workloads (semi-interval /
                           // acyclic) instead of the general mix
  bool verbose = false;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: cqacfuzz [options]\n"
      "  --seed N | A..B     seed or inclusive seed range (default 1)\n"
      "  --iterations N      iterations per seed (default 25, or until the\n"
      "                      time budget when one is set)\n"
      "  --minutes M         wall-clock budget in minutes\n"
      "  --seconds S         wall-clock budget in seconds\n"
      "  --corpus DIR        replay every *.cqac under DIR first\n"
      "  --out DIR           where shrunken repros go (default cqacfuzz-out)\n"
      "  --lattice full|smoke  configuration lattice to sweep (default full)\n"
      "  --jobs N            threads for the parallel lattice points\n"
      "  --inject-fault none|memo  deliberately break the Phase-1 memo\n"
      "                      (narrow fingerprints, skip verify-on-hit); the\n"
      "                      fuzzer must then find and shrink a divergence\n"
      "  --dump-workloads N  print N generated cases as corpus files to\n"
      "                      --out and exit (corpus seeding helper)\n"
      "  --tiers             alternate semi-interval-only and acyclic-only\n"
      "                      workloads so the generated stream targets the\n"
      "                      fast execution tiers (the lattice's forced-tier\n"
      "                      points then diff them against the general path)\n"
      "  --verbose           per-case progress\n");
}

bool ParseSeedRange(const std::string& s, uint64_t* lo, uint64_t* hi) {
  const size_t dots = s.find("..");
  try {
    if (dots == std::string::npos) {
      *lo = *hi = std::stoull(s);
    } else {
      *lo = std::stoull(s.substr(0, dots));
      *hi = std::stoull(s.substr(dots + 2));
    }
  } catch (...) {
    return false;
  }
  return *lo <= *hi;
}

std::optional<FuzzFlags> ParseFlags(int argc, char** argv) {
  FuzzFlags flags;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--seed") {
      if ((v = value(i)) == nullptr ||
          !ParseSeedRange(v, &flags.seed_lo, &flags.seed_hi)) {
        return std::nullopt;
      }
    } else if (arg == "--iterations") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.iterations = std::atoll(v);
    } else if (arg == "--minutes") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.seconds = std::atof(v) * 60;
    } else if (arg == "--seconds") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.seconds = std::atof(v);
    } else if (arg == "--corpus") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.corpus_dir = v;
    } else if (arg == "--out") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.out_dir = v;
    } else if (arg == "--lattice") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.lattice = v;
      if (flags.lattice != "full" && flags.lattice != "smoke") {
        return std::nullopt;
      }
    } else if (arg == "--jobs") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.jobs = std::atoi(v);
    } else if (arg == "--inject-fault") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.inject_fault = v;
      if (flags.inject_fault != "none" && flags.inject_fault != "memo") {
        return std::nullopt;
      }
    } else if (arg == "--dump-workloads") {
      if ((v = value(i)) == nullptr) return std::nullopt;
      flags.dump_workloads = std::atoi(v);
    } else if (arg == "--tiers") {
      flags.tiers = true;
    } else if (arg == "--verbose") {
      flags.verbose = true;
    } else {
      std::fprintf(stderr, "cqacfuzz: unknown flag '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  return flags;
}

/// Small-case workload parameters drawn per iteration.  The guard
/// `variables + constants <= 7` keeps the oracle's order enumeration (and
/// the rewriter's own Phase 1) within budget — 7 terms is under 50k
/// orders.
WorkloadConfig DrawConfig(std::mt19937_64& meta, bool tiers) {
  WorkloadConfig config;
  config.num_variables = PortableUniformInt(meta, 2, 4);
  config.num_constants =
      PortableUniformInt(meta, 0, std::min(2, 7 - config.num_variables - 3));
  config.num_subgoals = PortableUniformInt(meta, 2, 3);
  config.num_predicates = PortableUniformInt(meta, 2, 3);
  config.num_query_comparisons = PortableUniformInt(meta, 0, 2);
  config.num_views = PortableUniformInt(meta, 1, 4);
  config.view_subgoals = PortableUniformInt(meta, 1, 2);
  config.distractor_fraction = 0.25;
  if (tiers) {
    // Alternate between the two fast-tier shapes so the forced-tier
    // lattice points exercise their specialized paths rather than the
    // general fallback.
    if (PortableUniformInt(meta, 0, 1) == 0) {
      config.semi_interval_only = true;
      config.num_constants = std::max(1, config.num_constants);
    } else {
      config.acyclic_only = true;
    }
  }
  config.seed = meta();
  return config;
}

struct Finding {
  std::string kind;     // "lattice", "oracle", "metamorphic"
  std::string detail;   // what diverged / the counterexample
  FuzzCase c;           // the failing case (mutant for metamorphic)
  bool shrinkable = true;
};

class Fuzzer {
 public:
  explicit Fuzzer(const FuzzFlags& flags)
      : flags_(flags), lattice_(flags.lattice == "smoke"
                                    ? SmokeConfigLattice()
                                    : FullConfigLattice()) {
    for (LatticeConfig& config : lattice_) {
      if (config.jobs > 1) config.jobs = flags_.jobs;
    }
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(flags_.seconds));
  }

  bool TimeUp() const {
    return flags_.seconds > 0 && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Lattice sweep + oracle on one case.  Returns the finding, if any,
  /// and the baseline result for the metamorphic stage.
  std::optional<Finding> CheckCase(const FuzzCase& c,
                                   RewriteResult* baseline_out) {
    DifferentialReport report = RunConfigLattice(c, lattice_);
    if (baseline_out != nullptr) *baseline_out = report.baseline_result;
    if (!report.ok) {
      Finding f;
      f.kind = "lattice";
      f.detail = "config [" + report.divergent_config + "]: " + report.failure;
      f.c = c;
      return f;
    }
    if (report.baseline_result.outcome == RewriteOutcome::kRewritingFound) {
      const OracleVerdict verdict = CheckRewritingWithOracle(
          c, report.baseline_result.rewriting, oracle_options_);
      oracle_orders_ += verdict.orders_checked;
      oracle_databases_ += verdict.databases_checked;
      if (!verdict.ok) {
        Finding f;
        f.kind = "oracle";
        f.detail = "rewriting " +
                   report.baseline_result.rewriting.ToString() +
                   "\nis NOT equivalent to the query: " + verdict.failure;
        f.c = c;
        return f;
      }
      if (!verdict.checked) ++oracle_partial_;
    }
    return std::nullopt;
  }

  /// The shrinker's failure predicate: does the case still fail the
  /// lattice sweep or the oracle?
  bool FailsAnyCheck(const FuzzCase& c) {
    return CheckCase(c, nullptr).has_value();
  }

  void ReportFinding(Finding f, const std::string& origin) {
    ++findings_;
    std::string note = f.kind + " finding (from " + origin + ")";
    FuzzCase shrunk = f.c;
    if (f.shrinkable && FailsAnyCheck(f.c)) {
      const ShrinkResult result =
          ShrinkFailingCase(f.c, [this](const FuzzCase& candidate) {
            return FailsAnyCheck(candidate);
          });
      shrunk = result.c;
      note += "; shrunk to " +
              std::to_string(shrunk.query.body().size()) +
              " query subgoals, " + std::to_string(shrunk.views.size()) +
              " views in " + std::to_string(result.evaluations) +
              " evaluations";
    } else {
      note += "; not shrunk (failure needs its original context)";
    }
    // Record where the classifier routes the repro so a misrouting tier
    // is visible in the regression file itself.
    const TierDecision routed = ClassifyStructure(shrunk.query, shrunk.views);
    note += "; classifier routes it to ";
    note += TierName(routed.tier);
    note += " (" + routed.reason + ")";
    std::error_code ec;
    std::filesystem::create_directories(flags_.out_dir, ec);
    const std::string path = flags_.out_dir + "/finding-" +
                             std::to_string(findings_) + ".cqac";
    std::ofstream out(path);
    out << RegressionText(shrunk, note + "\n" + f.detail);
    std::fprintf(stderr, "cqacfuzz: FAIL %s\n%s\n  repro: %s\n", note.c_str(),
                 f.detail.c_str(), path.c_str());
  }

  /// One full iteration on a case: lattice + oracle, then a mutation with
  /// its declared-effect assertion, then lattice + oracle on the mutant.
  void RunCase(const FuzzCase& c, std::mt19937_64& meta,
               const std::string& origin) {
    ++cases_;
    RewriteResult baseline;
    if (std::optional<Finding> f = CheckCase(c, &baseline)) {
      ReportFinding(std::move(*f), origin);
      return;
    }
    std::optional<Mutation> m = ApplyRandomMutation(c, meta);
    if (!m.has_value()) return;
    ++cases_;
    RewriteResult mutant_baseline;
    if (std::optional<Finding> f = CheckCase(m->c, &mutant_baseline)) {
      ReportFinding(std::move(*f), origin + " + " + m->name);
      return;
    }
    std::string why;
    if (!MutationEffectHolds(m->effect, SignatureOf(baseline),
                             SignatureOf(mutant_baseline), &why)) {
      Finding f;
      f.kind = "metamorphic";
      f.detail = "mutation '" + m->name + "' (declared " +
                 MutationEffectName(m->effect) + ") violated its effect: " +
                 why + "\noriginal case:\n" + SerializeCase(c);
      f.c = m->c;
      // The mutant passed the lattice and oracle on its own; the failure
      // only exists relative to the original, which dropping subgoals
      // would destroy.
      f.shrinkable = false;
      ReportFinding(std::move(f), origin + " + " + m->name);
    }
  }

  int Run() {
    if (flags_.inject_fault == "memo") {
      // Make natural fingerprint collisions overwhelmingly likely AND
      // disable the verify-on-hit key compare that would turn them into
      // harmless misses: the memo now serves wrong entries, and the
      // phase1_dedup lattice points must diverge from the rest.
      internal::SetPhase1FingerprintBitsForTest(4);
      internal::SetPhase1MemoVerifyOnHitForTest(false);
      std::fprintf(stderr,
                   "cqacfuzz: fault injected (4-bit fingerprints, "
                   "verify-on-hit off); expecting findings\n");
    }

    if (!flags_.corpus_dir.empty()) {
      std::string error;
      std::optional<std::vector<CorpusEntry>> corpus =
          LoadCorpusDir(flags_.corpus_dir, &error);
      if (!corpus.has_value()) {
        std::fprintf(stderr, "cqacfuzz: %s\n", error.c_str());
        return 2;
      }
      std::mt19937_64 meta(flags_.seed_lo);
      for (const CorpusEntry& entry : *corpus) {
        if (TimeUp()) break;
        if (flags_.verbose) {
          std::fprintf(stderr, "cqacfuzz: corpus %s\n", entry.name.c_str());
        }
        RunCase(entry.c, meta, "corpus:" + entry.name);
      }
    }

    const int64_t per_seed_iterations =
        flags_.iterations > 0 ? flags_.iterations
                              : (flags_.seconds > 0 ? INT64_MAX : 25);
    // One generator stream per seed, interleaved round-robin so a time
    // budget spreads evenly over the seed range.
    const size_t num_seeds =
        static_cast<size_t>(flags_.seed_hi - flags_.seed_lo + 1);
    std::vector<std::mt19937_64> metas;
    metas.reserve(num_seeds);
    for (uint64_t s = flags_.seed_lo; s <= flags_.seed_hi; ++s) {
      metas.emplace_back(s);
    }
    for (int64_t iter = 0; iter < per_seed_iterations && !TimeUp(); ++iter) {
      for (size_t i = 0; i < num_seeds && !TimeUp(); ++i) {
        const WorkloadConfig config = DrawConfig(metas[i], flags_.tiers);
        WorkloadGenerator generator(config);
        const WorkloadInstance instance = generator.Generate();
        const std::string origin = "seed " +
                                   std::to_string(flags_.seed_lo + i) +
                                   " iter " + std::to_string(iter);
        if (flags_.verbose) {
          std::fprintf(stderr, "cqacfuzz: %s\n", origin.c_str());
        }
        RunCase(FuzzCase{instance.query, instance.views}, metas[i], origin);
      }
    }

    std::fprintf(stderr,
                 "cqacfuzz: %lld cases, %lld lattice points/case, "
                 "%lld oracle orders, %lld oracle databases, "
                 "%lld partially-checked, %lld findings\n",
                 static_cast<long long>(cases_),
                 static_cast<long long>(lattice_.size()),
                 static_cast<long long>(oracle_orders_),
                 static_cast<long long>(oracle_databases_),
                 static_cast<long long>(oracle_partial_),
                 static_cast<long long>(findings_));
    return findings_ == 0 ? 0 : 1;
  }

  int DumpWorkloads() {
    std::error_code ec;
    std::filesystem::create_directories(flags_.out_dir, ec);
    std::mt19937_64 meta(flags_.seed_lo);
    for (int i = 0; i < flags_.dump_workloads; ++i) {
      const WorkloadConfig config = DrawConfig(meta, flags_.tiers);
      WorkloadGenerator generator(config);
      const WorkloadInstance instance = generator.Generate();
      char name[64];
      std::snprintf(name, sizeof(name), "generated_%02d.cqac", i);
      std::ofstream out(flags_.out_dir + "/" + name);
      out << SerializeCase(
          FuzzCase{instance.query, instance.views},
          "generated: cqacfuzz --dump-workloads, seed " +
              std::to_string(flags_.seed_lo) + ", case " + std::to_string(i));
    }
    std::fprintf(stderr, "cqacfuzz: wrote %d cases to %s\n",
                 flags_.dump_workloads, flags_.out_dir.c_str());
    return 0;
  }

 private:
  FuzzFlags flags_;
  std::vector<LatticeConfig> lattice_;
  std::chrono::steady_clock::time_point deadline_;
  OracleOptions oracle_options_;
  int64_t cases_ = 0;
  int64_t findings_ = 0;
  int64_t oracle_orders_ = 0;
  int64_t oracle_databases_ = 0;
  int64_t oracle_partial_ = 0;
};

int Main(int argc, char** argv) {
  std::optional<FuzzFlags> flags = ParseFlags(argc, argv);
  if (!flags.has_value()) {
    Usage();
    return 2;
  }
  Fuzzer fuzzer(*flags);
  if (flags->dump_workloads > 0) return fuzzer.DumpWorkloads();
  return fuzzer.Run();
}

}  // namespace
}  // namespace testing
}  // namespace cqac

int main(int argc, char** argv) { return cqac::testing::Main(argc, argv); }
