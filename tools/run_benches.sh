#!/usr/bin/env bash
# Regenerates the checked-in benchmark results under results/.
#
# Always measures a Release build in its own build tree
# (build-release/), so numbers never silently come from a debug or
# sanitizer configuration — bench_common.h additionally hard-warns and
# stamps "debug_build" in the JSON record if that ever regresses.
#
# Usage:
#   tools/run_benches.sh [bench ...]
#
# With no arguments, re-runs the benches whose .txt snapshots are
# checked in.  Each bench writes results/<name>.txt (console output)
# and results/<name>.json (trajectory record, cold caches: no --memo).
#
# The pseudo-bench `server_throughput` is not a google-benchmark binary:
# it starts cqacd on a Unix socket and sweeps `cqacc --load` over
# connection counts 1/2/4/8, recording one JSON record per point in
# results/BENCH_server_throughput.json.
#
# Two more pseudo-benches ride the same harness:
#   catalog_steady_state  cold (classic cqacd) vs warm (cqacd --catalog,
#                         semantic cache) request latency on a repeated
#                         query -> results/BENCH_view_catalog.json
#   parallel_scaling      jobs=1/2/4 sweep of the serve-batch driver and
#                         of cqacd worker threads
#                         -> results/BENCH_parallel_scaling.json
#
# `columnar_engine` is the bench_columnar binary (row vs coded columnar
# engine) recorded under the trajectory name
# results/BENCH_columnar_engine.json.
#
# `tiered_execution` is the bench_tiers binary (forced tier 0 vs the
# semi-interval grid cache and the acyclic join-tree engine, with
# embedded output-equality checks) recorded under
# results/BENCH_tiered_execution.json.
#
# `telemetry_overhead` is the observability acceptance gate: bench_tiers
# keep-test rows with CQAC_TELEMETRY=1 (a bound request scope, so every
# span site records into the flight recorder) against the same rows from
# a separate -DCQAC_TRACING=OFF build tree (build-notrace/).  Per-row
# medians over several repetitions; the canonical keep-test row must stay
# within 3% -> results/BENCH_telemetry_overhead.json, nonzero exit on a
# gate failure.
set -euo pipefail

cd "$(dirname "$0")/.."
repo="$PWD"
build="$repo/build-release"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null

benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
  benches=(bench_containment bench_canonical bench_homomorphism bench_phase1
           columnar_engine tiered_execution server_throughput
           catalog_steady_state parallel_scaling telemetry_overhead)
fi

# A 5-relation chain: tens of milliseconds of Phase 1 per request on one
# core, so the warm (semantic-cache) path is clearly separable from cold.
write_chain_job() {
  cat > "$1" <<'EOF'
view v(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F).
query q(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F), A <= 8.
EOF
}

start_daemon() {  # start_daemon SOCK LOG [extra cqacd args...]
  local sock="$1" log="$2"
  shift 2
  "$build/tools/cqacd" --unix "$sock" "$@" > "$log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "error: cqacd did not come up" >&2; return 1; }
}

stop_daemon() {
  kill -TERM "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
}

run_server_throughput() {
  local requests=512
  local work sock daemon_pid out
  work="$(mktemp -d)"
  sock="$work/cqac.sock"
  out="$repo/results/BENCH_server_throughput.json"

  "$build/tools/cqacd" --unix "$sock" > "$work/cqacd.out" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "error: cqacd did not come up" >&2; return 1; }

  {
    echo "{\"bench\": \"server_throughput\","
    echo " \"commit\": \"$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)\","
    echo " \"cpus\": $(nproc),"
    echo " \"requests_per_point\": $requests,"
    echo " \"sweep\": ["
    local first=1
    for c in 1 2 4 8; do
      [ $first -eq 1 ] || echo ","
      first=0
      printf '  '
      "$build/tools/cqacc" --unix "$sock" --load "$requests" \
        --concurrency "$c" | tr -d '\n'
    done
    echo ""
    echo "]}"
  } > "$out"
  kill -TERM "$daemon_pid"
  wait "$daemon_pid" || true
  rm -rf "$work"
  cat "$out" | tee "$repo/results/BENCH_server_throughput.txt"
}

run_catalog_steady_state() {
  local work sock out job cold warm
  work="$(mktemp -d)"
  sock="$work/cqac.sock"
  job="$work/job.txt"
  out="$repo/results/BENCH_view_catalog.json"
  write_chain_job "$job"

  # Cold baseline: a classic server recompiles the views and reruns both
  # phases on every request.
  start_daemon "$sock" "$work/cold.out"
  cold="$("$build/tools/cqacc" --unix "$sock" --load 16 --concurrency 1 \
            --job-file "$job")"
  stop_daemon
  rm -f "$sock"

  # Steady state: cqacd --catalog serves repeats of the same query from
  # the alpha-normalized semantic cache — only the first request pays the
  # rewrite; p50 over 64 requests is the warm replay cost.
  start_daemon "$sock" "$work/warm.out" --catalog
  warm="$("$build/tools/cqacc" --unix "$sock" --load 64 --concurrency 1 \
            --job-file "$job")"
  stop_daemon
  rm -rf "$work"

  local cold_p50 warm_p50 speedup
  cold_p50="$(printf '%s' "$cold" | sed -n 's/.*"latency_ns_p50": \([0-9]*\).*/\1/p')"
  warm_p50="$(printf '%s' "$warm" | sed -n 's/.*"latency_ns_p50": \([0-9]*\).*/\1/p')"
  speedup="$(awk -v c="$cold_p50" -v w="$warm_p50" \
               'BEGIN { printf (w > 0 ? "%.1f" : "0"), c / w }')"
  {
    echo "{\"bench\": \"catalog_steady_state\","
    echo " \"commit\": \"$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)\","
    echo " \"cpus\": $(nproc),"
    echo " \"job\": \"chain5\","
    echo " \"cold\": $cold,"
    echo " \"warm\": $warm,"
    echo " \"warm_speedup_p50\": $speedup}"
  } > "$out"
  cat "$out" | tee "$repo/results/BENCH_view_catalog.txt"
}

run_parallel_scaling() {
  local work sock out job stream rec wall_start wall_ns
  work="$(mktemp -d)"
  sock="$work/cqac.sock"
  job="$work/job.txt"
  stream="$work/stream.txt"
  out="$repo/results/BENCH_parallel_scaling.json"
  write_chain_job "$job"
  : > "$stream"
  for _ in $(seq 1 8); do
    cat "$job" >> "$stream"
    echo >> "$stream"
  done

  {
    echo "{\"bench\": \"parallel_scaling\","
    echo " \"commit\": \"$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)\","
    echo " \"cpus\": $(nproc),"
    # Scaling numbers from a single-core host cannot show jobs>1 speedup;
    # flag them so trajectory consumers don't read flat sweeps as a
    # regression.
    if [ "$(nproc)" -le 1 ]; then
      echo " \"single_core\": true,"
      echo " \"caveat\": \"measured on a single-core host; jobs>1 cannot speed up\","
    else
      echo " \"single_core\": false,"
    fi
    echo " \"batch_jobs_per_run\": 8,"
    echo " \"batch_sweep\": ["
    local first=1
    for j in 1 2 4; do
      [ $first -eq 1 ] || echo ","
      first=0
      wall_start=$(date +%s%N)
      "$build/tools/cqacsh" --serve-batch --jobs "$j" \
        < "$stream" > /dev/null
      wall_ns=$(( $(date +%s%N) - wall_start ))
      printf '  {"jobs": %d, "wall_ns": %d}' "$j" "$wall_ns"
    done
    echo ""
    echo " ],"
    echo " \"server_sweep\": ["
    first=1
    for j in 1 2 4; do
      [ $first -eq 1 ] || echo ","
      first=0
      start_daemon "$sock" "$work/cqacd_$j.out" --jobs "$j"
      rec="$("$build/tools/cqacc" --unix "$sock" --load 32 \
               --concurrency "$j" --job-file "$job")"
      stop_daemon
      rm -f "$sock"
      printf '  {"jobs": %d, "load": %s}' "$j" "$rec"
    done
    echo ""
    echo "]}"
  } > "$out"
  rm -rf "$work"
  cat "$out" | tee "$repo/results/BENCH_parallel_scaling.txt"
}

run_telemetry_overhead() {
  local build_off="$repo/build-notrace"
  local out="$repo/results/BENCH_telemetry_overhead.json"
  local reps=5
  # The canonical keep-test row (tier-1 grid sweep) is the gate; the
  # Phase-1 sweep rows ride along as the span-dense informational upper
  # bound (phase1.database + phase1.freeze fire per canonical database).
  local gate_row='BM_SemiIntervalKeepTest/1'
  local filter='BM_SemiIntervalKeepTest/1$|BM_SemiIntervalPhase1'
  local work
  work="$(mktemp -d)"

  cmake -S "$repo" -B "$build_off" -DCMAKE_BUILD_TYPE=Release \
    -DCQAC_TRACING=OFF >/dev/null
  cmake --build "$build_off" --target bench_tiers -j"$(nproc)" >/dev/null

  collect() {  # collect BINARY TELEMETRY ROWSFILE
    local bin="$1" telemetry="$2" rows="$3" rep
    : > "$rows"
    for rep in $(seq 1 "$reps"); do
      CQAC_TELEMETRY="$telemetry" "$bin" --json "$work/run.json" \
        --benchmark_filter="$filter" --benchmark_color=false \
        >/dev/null 2>&1
      sed -n 's/.*"name": "\([^"]*\)", "wall_ms": \([0-9.e+-]*\).*/\1 \2/p' \
        "$work/run.json" >> "$rows"
    done
  }
  median() {  # median ROWNAME ROWSFILE
    grep -F "$1 " "$2" | awk '{print $2}' | sort -g \
      | awk '{v[NR] = $1} END {print v[int((NR + 1) / 2)]}'
  }

  collect "$build/bench/bench_tiers" 1 "$work/on.rows"
  collect "$build_off/bench/bench_tiers" "" "$work/off.rows"

  local rows first=1 name on off ratio gate_ratio=0 pass=true
  rows="$(awk '{print $1}' "$work/on.rows" | sort -u)"
  {
    echo "{\"bench\": \"telemetry_overhead\","
    echo " \"commit\": \"$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)\","
    echo " \"cpus\": $(nproc),"
    echo " \"repetitions\": $reps,"
    echo " \"gate_row\": \"$gate_row\","
    echo " \"gate_threshold_ratio\": 1.03,"
    echo " \"rows\": ["
    for name in $rows; do
      on="$(median "$name" "$work/on.rows")"
      off="$(median "$name" "$work/off.rows")"
      ratio="$(awk -v a="$on" -v b="$off" \
                 'BEGIN { printf (b > 0 ? "%.4f" : "0"), a / b }')"
      [ "$name" = "$gate_row" ] && gate_ratio="$ratio"
      [ $first -eq 1 ] || echo ","
      first=0
      printf '  {"name": "%s", "telemetry_on_ms": %s, "tracing_off_ms": %s, "ratio": %s}' \
        "$name" "$on" "$off" "$ratio"
    done
    echo ""
    echo " ],"
    pass="$(awk -v r="$gate_ratio" 'BEGIN { print (r > 0 && r <= 1.03) ? "true" : "false" }')"
    echo " \"gate_ratio\": $gate_ratio,"
    echo " \"pass\": $pass}"
  } > "$out"
  rm -rf "$work"
  cat "$out" | tee "$repo/results/BENCH_telemetry_overhead.txt"
  if ! grep -q '"pass": true' "$out"; then
    echo "error: telemetry overhead gate FAILED (ratio $gate_ratio > 1.03)" >&2
    return 1
  fi
}

targets=()
for bench in "${benches[@]}"; do
  case "$bench" in
    server_throughput|catalog_steady_state) targets+=(cqacd cqacc) ;;
    parallel_scaling) targets+=(cqacd cqacc cqacsh) ;;
    columnar_engine) targets+=(bench_columnar) ;;
    tiered_execution|telemetry_overhead) targets+=(bench_tiers) ;;
    *) targets+=("$bench") ;;
  esac
done
cmake --build "$build" --target "${targets[@]}" -j"$(nproc)"

mkdir -p "$repo/results"
echo "commit: $(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)"
echo "cpus:   $(nproc)"
for bench in "${benches[@]}"; do
  echo "=== $bench ==="
  case "$bench" in
    server_throughput) run_server_throughput ;;
    catalog_steady_state) run_catalog_steady_state ;;
    parallel_scaling) run_parallel_scaling ;;
    telemetry_overhead) run_telemetry_overhead ;;
    columnar_engine)
      "$build/bench/bench_columnar" \
        --json "$repo/results/BENCH_columnar_engine.json" \
        --benchmark_color=false 2>&1 \
        | tee "$repo/results/BENCH_columnar_engine.txt"
      ;;
    tiered_execution)
      "$build/bench/bench_tiers" \
        --json "$repo/results/BENCH_tiered_execution.json" \
        --benchmark_color=false 2>&1 \
        | tee "$repo/results/BENCH_tiered_execution.txt"
      ;;
    *)
      "$build/bench/$bench" --json "$repo/results/$bench.json" \
        --benchmark_color=false 2>&1 | tee "$repo/results/$bench.txt"
      ;;
  esac
done
