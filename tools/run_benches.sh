#!/usr/bin/env bash
# Regenerates the checked-in benchmark results under results/.
#
# Always measures a Release build in its own build tree
# (build-release/), so numbers never silently come from a debug or
# sanitizer configuration — bench_common.h additionally hard-warns and
# stamps "debug_build" in the JSON record if that ever regresses.
#
# Usage:
#   tools/run_benches.sh [bench ...]
#
# With no arguments, re-runs the benches whose .txt snapshots are
# checked in.  Each bench writes results/<name>.txt (console output)
# and results/<name>.json (trajectory record, cold caches: no --memo).
set -euo pipefail

cd "$(dirname "$0")/.."
repo="$PWD"
build="$repo/build-release"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null

benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
  benches=(bench_containment bench_canonical bench_homomorphism bench_phase1)
fi

cmake --build "$build" --target "${benches[@]}" -j"$(nproc)"

mkdir -p "$repo/results"
echo "commit: $(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)"
echo "cpus:   $(nproc)"
for bench in "${benches[@]}"; do
  echo "=== $bench ==="
  "$build/bench/$bench" --json "$repo/results/$bench.json" \
    --benchmark_color=false 2>&1 | tee "$repo/results/$bench.txt"
done
