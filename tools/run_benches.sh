#!/usr/bin/env bash
# Regenerates the checked-in benchmark results under results/.
#
# Always measures a Release build in its own build tree
# (build-release/), so numbers never silently come from a debug or
# sanitizer configuration — bench_common.h additionally hard-warns and
# stamps "debug_build" in the JSON record if that ever regresses.
#
# Usage:
#   tools/run_benches.sh [bench ...]
#
# With no arguments, re-runs the benches whose .txt snapshots are
# checked in.  Each bench writes results/<name>.txt (console output)
# and results/<name>.json (trajectory record, cold caches: no --memo).
#
# The pseudo-bench `server_throughput` is not a google-benchmark binary:
# it starts cqacd on a Unix socket and sweeps `cqacc --load` over
# connection counts 1/2/4/8, recording one JSON record per point in
# results/BENCH_server_throughput.json.
set -euo pipefail

cd "$(dirname "$0")/.."
repo="$PWD"
build="$repo/build-release"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null

benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
  benches=(bench_containment bench_canonical bench_homomorphism bench_phase1
           server_throughput)
fi

run_server_throughput() {
  local requests=512
  local work sock daemon_pid out
  work="$(mktemp -d)"
  sock="$work/cqac.sock"
  out="$repo/results/BENCH_server_throughput.json"

  "$build/tools/cqacd" --unix "$sock" > "$work/cqacd.out" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "error: cqacd did not come up" >&2; return 1; }

  {
    echo "{\"bench\": \"server_throughput\","
    echo " \"commit\": \"$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)\","
    echo " \"cpus\": $(nproc),"
    echo " \"requests_per_point\": $requests,"
    echo " \"sweep\": ["
    local first=1
    for c in 1 2 4 8; do
      [ $first -eq 1 ] || echo ","
      first=0
      printf '  '
      "$build/tools/cqacc" --unix "$sock" --load "$requests" \
        --concurrency "$c" | tr -d '\n'
    done
    echo ""
    echo "]}"
  } > "$out"
  kill -TERM "$daemon_pid"
  wait "$daemon_pid" || true
  rm -rf "$work"
  cat "$out" | tee "$repo/results/BENCH_server_throughput.txt"
}

targets=()
for bench in "${benches[@]}"; do
  if [ "$bench" = server_throughput ]; then
    targets+=(cqacd cqacc)
  else
    targets+=("$bench")
  fi
done
cmake --build "$build" --target "${targets[@]}" -j"$(nproc)"

mkdir -p "$repo/results"
echo "commit: $(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)"
echo "cpus:   $(nproc)"
for bench in "${benches[@]}"; do
  echo "=== $bench ==="
  if [ "$bench" = server_throughput ]; then
    run_server_throughput
  else
    "$build/bench/$bench" --json "$repo/results/$bench.json" \
      --benchmark_color=false 2>&1 | tee "$repo/results/$bench.txt"
  fi
done
