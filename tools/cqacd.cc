// cqacd: the persistent rewrite service (docs/SERVICE.md).
//
//   $ ./build/tools/cqacd --unix /tmp/cqac.sock --jobs 4
//   cqacd: listening on unix:/tmp/cqac.sock
//
//   $ ./build/tools/cqacd --port 0        # ephemeral loopback TCP port
//   cqacd: listening on tcp:127.0.0.1:38651
//
// Clients (tools/cqacc, or anything speaking the length-prefixed frame
// protocol of src/server/protocol.h) submit rewriting jobs and receive
// one response frame per job, with a body byte-identical to the
// corresponding `cqacsh --serve-batch` result block.  All connections
// share one work-stealing thread pool and one containment memo cache.
//
// SIGTERM or SIGINT triggers a graceful drain: stop accepting, finish
// in-flight jobs, deliver their responses, print the standard batch
// footer, exit 0.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "runtime/batch_driver.h"
#include "runtime/thread_pool.h"
#include "server/server.h"

namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: cqacd [--unix PATH] [--port N] [--jobs N]\n"
         "             [--max-inflight N] [--deadline-ms N] [--echo]\n"
         "             [--catalog] [--catalog-views FILE]\n"
         "             [--stats] [--json] [--metrics] [--trace FILE]\n"
         "             [--metrics-dump FILE] [--metrics-interval SEC]\n"
         "             [--slow-log FILE] [--help]\n"
         "  --unix PATH      listen on a Unix-domain socket at PATH\n"
         "  --port N         listen on 127.0.0.1:N (0 = pick an ephemeral\n"
         "                   port; the chosen port is printed on startup)\n"
         "  --jobs N         worker threads for rewriting (0 = all cores;\n"
         "                   default: all cores; max 4096)\n"
         "  --max-inflight N admission-control limit: requests beyond N\n"
         "                   in-flight jobs get `overloaded` responses\n"
         "                   (default 256)\n"
         "  --deadline-ms N  default per-request deadline for requests\n"
         "                   that do not set one (0 = none)\n"
         "  --echo           echo job definitions in result bodies by\n"
         "                   default (requests can override per job)\n"
         "  --catalog        compile each view set once into a shared\n"
         "                   ViewCatalog: plans, memos, and the semantic\n"
         "                   result cache persist across requests; also\n"
         "                   enables the set_catalog request\n"
         "  --catalog-views FILE\n"
         "                   compile FILE (a block of `view` directives)\n"
         "                   as the default catalog at startup; query-only\n"
         "                   requests are served against it (implies\n"
         "                   --catalog)\n"
         "  --stats          include the Phase-1 breakdown in the exit\n"
         "                   footer\n"
         "  --json           include the one-line JSON summary record in\n"
         "                   the exit footer\n"
         "  --metrics        collect runtime metrics and dump the registry\n"
         "                   in the exit footer\n"
         "  --trace FILE     record phase-level spans and write a Chrome\n"
         "                   trace-event JSON file on exit\n"
         "  --metrics-dump FILE\n"
         "                   write the registry in Prometheus text format\n"
         "                   to FILE periodically (atomic rename) and on\n"
         "                   exit; a scraper can also use the get_metrics\n"
         "                   wire request instead\n"
         "  --metrics-interval SEC\n"
         "                   seconds between --metrics-dump writes\n"
         "                   (default 15)\n"
         "  --slow-log FILE  append the attribution header and flight-\n"
         "                   recorder excerpt of every deadline-exceeded\n"
         "                   or errored request to FILE as JSON lines\n"
         "                   (\"-\" = stderr)\n"
         "  --help           this message\n"
         "\n"
         "At least one of --unix and --port is required.  SIGTERM/SIGINT\n"
         "drain gracefully: in-flight jobs finish and deliver, then the\n"
         "batch footer is printed and cqacd exits 0.\n";
}

/// Parses a non-negative integer flag value; false on garbage.
bool ParseNonNegative(const std::string& text, int64_t* value) {
  if (text.empty()) return false;
  int64_t parsed = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (parsed > (INT64_MAX - (c - '0')) / 10) return false;
    parsed = parsed * 10 + (c - '0');
  }
  *value = parsed;
  return true;
}

bool WriteTraceFile(const std::string& path) {
  const cqac::obs::CollectedTrace trace = cqac::obs::StopTracing();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write trace file '" << path << "'\n";
    return false;
  }
  cqac::obs::WriteChromeTrace(out, trace);
  if (!cqac::obs::TracingCompiledIn()) {
    std::cerr << "warning: this build has CQAC_TRACING=OFF; the trace is "
                 "empty\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cqac::server::ServerOptions options;
  bool print_stats = false;
  bool json_summary = false;
  bool metrics = false;
  std::string trace_path;
  std::string metrics_dump_path;
  int64_t metrics_interval_sec = 15;

  auto next_value = [&](int* i, const char* flag) -> const char* {
    if (*i + 1 >= argc) {
      std::cerr << "error: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++*i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t value = 0;
    if (arg == "--unix") {
      const char* v = next_value(&i, "--unix");
      if (v == nullptr) return 1;
      options.unix_socket_path = v;
    } else if (arg == "--port") {
      const char* v = next_value(&i, "--port");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &value) || value > 65535) {
        std::cerr << "error: --port needs a port number (0-65535), got '"
                  << v << "'\n";
        return 1;
      }
      options.tcp_port = static_cast<int>(value);
    } else if (arg == "--jobs") {
      const char* v = next_value(&i, "--jobs");
      if (v == nullptr) return 1;
      std::string error;
      if (!cqac::ThreadPool::ParseJobsFlag(v, &options.jobs, &error)) {
        std::cerr << "error: --jobs " << error << "\n";
        return 1;
      }
    } else if (arg == "--max-inflight") {
      const char* v = next_value(&i, "--max-inflight");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &value) || value < 1) {
        std::cerr << "error: --max-inflight needs a positive integer, got '"
                  << v << "'\n";
        return 1;
      }
      options.max_inflight = value;
    } else if (arg == "--deadline-ms") {
      const char* v = next_value(&i, "--deadline-ms");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &value)) {
        std::cerr << "error: --deadline-ms needs a non-negative integer, "
                     "got '"
                  << v << "'\n";
        return 1;
      }
      options.default_deadline_ms = value;
    } else if (arg == "--echo") {
      options.echo = true;
    } else if (arg == "--catalog") {
      options.use_catalog = true;
    } else if (arg == "--catalog-views") {
      const char* v = next_value(&i, "--catalog-views");
      if (v == nullptr) return 1;
      std::ifstream in(v);
      if (!in) {
        std::cerr << "error: cannot read catalog views file '" << v << "'\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      options.catalog_views_text = buffer.str();
      options.use_catalog = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--json") {
      json_summary = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--trace") {
      const char* v = next_value(&i, "--trace");
      if (v == nullptr) return 1;
      trace_path = v;
    } else if (arg == "--metrics-dump") {
      const char* v = next_value(&i, "--metrics-dump");
      if (v == nullptr) return 1;
      metrics_dump_path = v;
    } else if (arg == "--metrics-interval") {
      const char* v = next_value(&i, "--metrics-interval");
      if (v == nullptr) return 1;
      if (!ParseNonNegative(v, &value) || value < 1) {
        std::cerr << "error: --metrics-interval needs a positive integer, "
                     "got '"
                  << v << "'\n";
        return 1;
      }
      metrics_interval_sec = value;
    } else if (arg == "--slow-log") {
      const char* v = next_value(&i, "--slow-log");
      if (v == nullptr) return 1;
      options.slow_log_path = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }

  if (options.unix_socket_path.empty() && options.tcp_port < 0) {
    std::cerr << "error: no listener: pass --unix PATH and/or --port N\n";
    return 1;
  }

  // Block the shutdown signals in every thread (the mask is inherited),
  // then sigwait for them on a dedicated thread: no async-signal-safety
  // contortions, just an ordinary call to BeginDrain.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  if (!trace_path.empty()) cqac::obs::StartTracing();
  // The registry is always on in the daemon so `get_metrics` and
  // --metrics-dump are never empty; --metrics keeps its old meaning of
  // also printing the registry in the exit footer.
  cqac::obs::EnableMetrics(true);

  cqac::server::Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  // Periodic Prometheus dump: write-then-rename so a scraper reading the
  // file never sees a torn render.
  std::mutex dump_mu;
  std::condition_variable dump_cv;
  bool dump_stop = false;
  auto dump_metrics = [&]() -> bool {
    const std::string tmp = metrics_dump_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    cqac::obs::WritePrometheusText(out, cqac::obs::MetricsRegistry::Global());
    out.close();
    return out.good() && std::rename(tmp.c_str(),
                                     metrics_dump_path.c_str()) == 0;
  };
  std::thread dump_thread;
  if (!metrics_dump_path.empty()) {
    if (!dump_metrics()) {
      std::cerr << "error: cannot write metrics dump '" << metrics_dump_path
                << "'\n";
      server.BeginDrain();
      server.Wait();
      return 1;
    }
    dump_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(dump_mu);
      while (!dump_stop) {
        dump_cv.wait_for(lock, std::chrono::seconds(metrics_interval_sec));
        if (dump_stop) break;
        dump_metrics();
      }
    });
  }
  if (!options.unix_socket_path.empty()) {
    std::cout << "cqacd: listening on unix:" << options.unix_socket_path
              << "\n";
  }
  if (options.tcp_port >= 0) {
    std::cout << "cqacd: listening on tcp:127.0.0.1:" << server.tcp_port()
              << "\n";
  }
  std::cout.flush();

  std::thread signal_thread([&] {
    int sig = 0;
    sigwait(&sigs, &sig);
    std::cerr << "cqacd: received "
              << (sig == SIGTERM ? "SIGTERM" : "SIGINT") << ", draining\n";
    server.BeginDrain();
  });

  server.Wait();
  signal_thread.join();
  if (dump_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dump_mu);
      dump_stop = true;
    }
    dump_cv.notify_all();
    dump_thread.join();
    dump_metrics();  // Final render reflecting the drained state.
  }

  cqac::BatchOptions footer;
  footer.print_stats = print_stats;
  footer.json_summary = json_summary;
  footer.print_metrics = metrics;
  cqac::WriteBatchFooter(std::cout, server.summary(), footer);
  std::cout.flush();

  if (!trace_path.empty() && !WriteTraceFile(trace_path)) return 1;
  return 0;
}
